package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathAlloc enforces a zero-allocation discipline on functions
// annotated `//discvet:hotpath` and everything they statically call.
//
// Annotation grammar (full spec in DESIGN.md §12):
//
//	//discvet:hotpath [reason]   — this function is a hot-path root:
//	                               it and every module function it
//	                               statically calls must not allocate.
//	//discvet:coldpath [reason]  — this function is an audited escape
//	                               (error formatting, audit events,
//	                               first-touch slow paths): enforcement
//	                               stops at its boundary.
//
// The hot set is the transitive closure of the roots over EdgeStatic
// call edges into module functions, stopping at functions annotated
// either way (hotpath functions are their own roots; coldpath
// functions are exempt). Dynamic dispatch (interface and func-value
// edges) is not followed: a Sink implementation is the integrator's
// contract, not the library's.
//
// Inside a hot function five constructs are flagged:
//
//   - any call into package fmt (formatting state always allocates);
//   - map and slice composite literals;
//   - append to a slice whose local declaration visibly lacks
//     capacity (no make with a length/capacity); slices received as
//     parameters or fields get the benefit of the doubt;
//   - function literals that capture enclosing variables (the closure
//     cell is heap-allocated at creation);
//   - implicit interface boxing — an argument, assignment, or return
//     that converts a concrete value to an interface type — unless
//     the concrete type is pointer-shaped (pointers, channels, maps,
//     funcs fit the interface word without allocating). Calls to
//     coldpath functions are exempt: the annotation asserts the whole
//     call belongs to a cold branch.
var HotPathAlloc = &Analyzer{
	Name:      "hotpathalloc",
	Doc:       "//discvet:hotpath functions (and their static callees) must not allocate: no fmt, map/slice literals, unpreallocated append, capturing closures, or interface boxing",
	RunModule: runHotPathAlloc,
}

type pathAnnotation int8

const (
	annNone pathAnnotation = iota
	annHot
	annCold
)

func parsePathAnnotation(text string) pathAnnotation {
	if rest, ok := strings.CutPrefix(text, "//discvet:hotpath"); ok && directiveEnd(rest) {
		return annHot
	}
	if rest, ok := strings.CutPrefix(text, "//discvet:coldpath"); ok && directiveEnd(rest) {
		return annCold
	}
	return annNone
}

func directiveEnd(rest string) bool {
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// collectPathAnnotations maps every annotated function declaration to
// its annotation. A directive lives in the doc comment or on the line
// directly above the declaration.
func collectPathAnnotations(pass *ModulePass) map[*types.Func]pathAnnotation {
	out := map[*types.Func]pathAnnotation{}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			lineAnn := map[int]pathAnnotation{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if a := parsePathAnnotation(c.Text); a != annNone {
						lineAnn[pkg.Fset.Position(c.End()).Line] = a
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ann := annNone
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if a := parsePathAnnotation(c.Text); a != annNone {
							ann = a
						}
					}
				}
				if ann == annNone {
					ann = lineAnn[pkg.Fset.Position(fd.Pos()).Line-1]
				}
				if ann == annNone {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = ann
				}
			}
		}
	}
	return out
}

func runHotPathAlloc(pass *ModulePass) {
	ann := collectPathAnnotations(pass)

	cold := map[*types.Func]bool{}
	var roots []*FuncNode
	for fn, a := range ann {
		switch a {
		case annCold:
			cold[fn] = true
		case annHot:
			if node, ok := pass.Graph.Funcs[fn]; ok {
				roots = append(roots, node)
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if a, b := funcDisplayName(roots[i].Fn), funcDisplayName(roots[j].Fn); a != b {
			return a < b
		}
		return roots[i].Decl.Pos() < roots[j].Decl.Pos()
	})

	// hotVia maps every function in the hot set to the root that pulled
	// it in (first root wins, deterministically).
	hotVia := map[*types.Func]*FuncNode{}
	for _, root := range roots {
		queue := []*FuncNode{root}
		hotVia[root.Fn] = root
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range n.Out {
				if e.Kind != EdgeStatic {
					continue
				}
				if _, seen := hotVia[e.Callee]; seen {
					continue
				}
				if ann[e.Callee] != annNone {
					continue // hot callees are their own roots; cold callees are exempt
				}
				callee, ok := pass.Graph.Funcs[e.Callee]
				if !ok {
					continue // outside the module: not ours to enforce
				}
				hotVia[e.Callee] = root
				queue = append(queue, callee)
			}
		}
	}

	var hot []*FuncNode
	for fn := range hotVia {
		hot = append(hot, pass.Graph.Funcs[fn])
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Decl.Pos() < hot[j].Decl.Pos() })
	for _, n := range hot {
		c := &hotChecker{
			pass: pass,
			pkg:  n.Pkg,
			via:  funcDisplayName(hotVia[n.Fn].Fn),
			cold: cold,
		}
		c.checkFunc(n)
	}
}

// hotChecker scans one hot function for forbidden constructs.
type hotChecker struct {
	pass *ModulePass
	pkg  *Package
	via  string // display name of the hot root that made this function hot
	cold map[*types.Func]bool
	defs map[*ast.Ident]ast.Node // lazy index: defining ident -> assign/spec
}

func (c *hotChecker) reportf(pos ast.Node, format string, args ...any) {
	c.pass.Reportf(pos.Pos(), "hot path (%s): "+format, append([]any{c.via}, args...)...)
}

func (c *hotChecker) checkFunc(n *FuncNode) {
	info := n.Pkg.Info
	var lits []*ast.FuncLit // innermost-last, for return-signature lookup
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			lits = append(lits, x)
			c.checkCapture(x)
		case *ast.CompositeLit:
			c.checkComposite(x)
		case *ast.CallExpr:
			c.checkCall(x)
		case *ast.AssignStmt:
			c.checkAssign(x)
		case *ast.ValueSpec:
			c.checkValueSpec(x)
		case *ast.ReturnStmt:
			c.checkReturn(x, n, lits)
		case *ast.SendStmt:
			if ch, ok := info.Types[x.Chan].Type.Underlying().(*types.Chan); ok {
				c.checkBox(ch.Elem(), x.Value, "channel send")
			}
		}
		return true
	})
}

// checkCapture flags a function literal that closes over enclosing
// variables: the closure cell is heap-allocated every time the literal
// is evaluated.
func (c *hotChecker) checkCapture(lit *ast.FuncLit) {
	info := c.pkg.Info
	var captured []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		captured = append(captured, v.Name())
		return true
	})
	if len(captured) > 0 {
		sort.Strings(captured)
		c.reportf(lit, "closure captures %s; the closure cell allocates at every evaluation",
			strings.Join(captured, ", "))
	}
}

func (c *hotChecker) checkComposite(lit *ast.CompositeLit) {
	tv, ok := c.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.reportf(lit, "map literal allocates on every evaluation")
	case *types.Slice:
		c.reportf(lit, "slice literal allocates on every evaluation")
	}
}

func (c *hotChecker) checkCall(call *ast.CallExpr) {
	info := c.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): boxing only when T is an interface.
		if t := tv.Type; types.IsInterface(t) && len(call.Args) == 1 {
			c.checkBox(t, call.Args[0], "conversion")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				c.checkAppend(call)
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil {
		if c.cold[fn] {
			return // coldpath boundary: the whole call is off the hot path
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.reportf(call, "call to fmt.%s allocates its formatting state", fn.Name())
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice itself; no per-element boxing
			}
			vp, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = vp.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkBox(pt, arg, "argument")
	}
}

// checkAppend flags append to a slice whose local declaration visibly
// lacks preallocated capacity. Parameters, fields, and slices built by
// other calls get the benefit of the doubt.
func (c *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	info := c.pkg.Info
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return
	}
	switch c.sliceOrigin(v) {
	case sliceNoCapacity:
		c.reportf(call, "append to %s, which was declared without preallocated capacity (use make with a capacity)", v.Name())
	}
}

type sliceOriginKind int8

const (
	sliceUnknown sliceOriginKind = iota // parameter, field, or built elsewhere
	slicePreallocated
	sliceNoCapacity
)

// sliceOrigin classifies how the local slice variable was created, by
// finding its defining assignment or var spec in the enclosing file.
func (c *hotChecker) sliceOrigin(v *types.Var) sliceOriginKind {
	info := c.pkg.Info
	for id, obj := range info.Defs {
		if obj != types.Object(v) {
			continue
		}
		switch p := c.nodeDefining(id).(type) {
		case *ast.AssignStmt:
			for i, lhs := range p.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && lid == id && i < len(p.Rhs) {
					return classifySliceRHS(info, p.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(p.Values) == 0 {
				return sliceNoCapacity // var x []T: nil, grows by doubling
			}
			for i, name := range p.Names {
				if name == id && i < len(p.Values) {
					return classifySliceRHS(info, p.Values[i])
				}
			}
		}
		return sliceUnknown
	}
	return sliceUnknown
}

// defSites indexes, per checker, each defining identifier's enclosing
// assignment or value spec. Built lazily from the package AST.
func (c *hotChecker) nodeDefining(id *ast.Ident) ast.Node {
	if c.defs == nil {
		c.defs = map[*ast.Ident]ast.Node{}
		for _, f := range c.pkg.Files {
			ast.Inspect(f, func(nd ast.Node) bool {
				switch x := nd.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if lid, ok := lhs.(*ast.Ident); ok {
							if _, defined := c.pkg.Info.Defs[lid]; defined {
								c.defs[lid] = x
							}
						}
					}
				case *ast.ValueSpec:
					for _, name := range x.Names {
						c.defs[name] = x
					}
				}
				return true
			})
		}
	}
	return c.defs[id]
}

func classifySliceRHS(info *types.Info, e ast.Expr) sliceOriginKind {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" {
				if len(x.Args) >= 2 {
					return slicePreallocated
				}
				return sliceNoCapacity // make([]T) has no capacity... and does not compile; defensive
			}
		}
		return sliceUnknown // built by another function
	case *ast.CompositeLit:
		return sliceNoCapacity // []T{...}: capacity = len, first append reallocates
	case *ast.Ident:
		if x.Name == "nil" {
			return sliceNoCapacity
		}
	}
	return sliceUnknown
}

func (c *hotChecker) checkAssign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE || len(s.Lhs) != len(s.Rhs) {
		return // defines infer types; multi-value unpacking is out of scope
	}
	info := c.pkg.Info
	for i, lhs := range s.Lhs {
		tv, ok := info.Types[lhs]
		if !ok || tv.Type == nil {
			continue
		}
		c.checkBox(tv.Type, s.Rhs[i], "assignment")
	}
}

func (c *hotChecker) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	tv, ok := c.pkg.Info.Types[vs.Type]
	if !ok || tv.Type == nil {
		return
	}
	for _, v := range vs.Values {
		c.checkBox(tv.Type, v, "declaration")
	}
}

func (c *hotChecker) checkReturn(ret *ast.ReturnStmt, n *FuncNode, lits []*ast.FuncLit) {
	sig := c.enclosingSignature(ret, n, lits)
	if sig == nil {
		return
	}
	results := sig.Results()
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		c.checkBox(results.At(i).Type(), r, "return")
	}
}

// enclosingSignature resolves which function a return belongs to: the
// innermost function literal containing it, or the declaration.
func (c *hotChecker) enclosingSignature(ret *ast.ReturnStmt, n *FuncNode, lits []*ast.FuncLit) *types.Signature {
	info := c.pkg.Info
	for i := len(lits) - 1; i >= 0; i-- {
		lit := lits[i]
		if ret.Pos() >= lit.Pos() && ret.End() <= lit.End() {
			if tv, ok := info.Types[lit]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					return sig
				}
			}
			return nil
		}
	}
	if fn, ok := info.Defs[n.Decl.Name].(*types.Func); ok {
		return fn.Type().(*types.Signature)
	}
	return nil
}

// checkBox reports an implicit concrete-to-interface conversion that
// heap-allocates: the destination is an interface and the source a
// concrete type that does not fit the interface's data word.
func (c *hotChecker) checkBox(dst types.Type, src ast.Expr, site string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := c.pkg.Info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if types.IsInterface(st) || pointerShaped(st) {
		return
	}
	qual := types.RelativeTo(c.pkg.Types)
	c.reportf(src, "%s boxes %s into %s; boxing allocates",
		site, types.TypeString(st, qual), types.TypeString(dst, qual))
}

// pointerShaped reports whether a value of type t fits an interface's
// data word without allocating: pointers, channels, maps, funcs,
// unsafe.Pointer, and nil.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}
