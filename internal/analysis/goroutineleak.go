package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GoroutineLeak flags `go` statements whose spawned function has no
// visible termination signal. A goroutine passes when any of these
// holds:
//
//   - ctx-dominated: the body receives from a context's Done channel
//     or checks ctx.Err(), so cancellation reaches it;
//   - channel-close-dominated: the body ranges over (or receives
//     from) a channel that the spawning function closes, so the
//     spawner controls its lifetime;
//   - join-dominated: the body signals a sync.WaitGroup (wg.Done) and
//     the spawning function waits on a WaitGroup, the bounded
//     worker-pool idiom (internal/library's Mount prewarm) — unless
//     the body also contains an unbounded loop, which a join cannot
//     end;
//   - bounded: the body has no unbounded loop, no channel operation,
//     no select, and no call matched by the blockingSinks table, so
//     it runs to completion on its own.
//
// Spawned named functions resolve through the call graph; their
// bodies are classified one level deep (a callee that itself spawns
// or loops unboundedly behind a second hop is out of scope — see
// DESIGN.md §12). Spawning a function the module cannot analyze is
// flagged only when the blockingSinks table marks it as running until
// an external shutdown (e.g. http.Server.Serve): such spawns need a
// justified //discvet:ignore tying the goroutine to its shutdown
// path.
var GoroutineLeak = &Analyzer{
	Name:      "goroutineleak",
	Doc:       "spawned goroutines need a termination signal: ctx.Done, a spawner-closed channel, or a WaitGroup join",
	RunModule: runGoroutineLeak,
}

func runGoroutineLeak(pass *ModulePass) {
	nodes := make([]*FuncNode, 0, len(pass.Graph.Funcs))
	for _, n := range pass.Graph.Funcs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })

	for _, n := range nodes {
		info := n.Pkg.Info
		spawnerWaits := containsWaitGroupWait(info, n.Decl.Body)
		closed := channelsClosedIn(info, n.Decl.Body)
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			g, ok := nd.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, n, g, spawnerWaits, closed)
			return true
		})
	}
}

func checkGoStmt(pass *ModulePass, n *FuncNode, g *ast.GoStmt, spawnerWaits bool, closed map[*types.Var]bool) {
	info := n.Pkg.Info
	var body *ast.BlockStmt
	var rename map[*types.Var]*types.Var
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := calleeFunc(info, g.Call); fn != nil {
		if node, ok := pass.Graph.Funcs[fn]; ok {
			// Channels the callee consumes are its parameter objects;
			// map them back to the spawner's argument variables so
			// close() in the spawner is recognized.
			rename = paramArgVars(info, fn, g.Call)
			body = node.Decl.Body
			info = node.Pkg.Info
		} else if matchAny(fn, blockingSinks) {
			pass.Reportf(g.Pos(),
				"goroutine runs %s, which blocks until an external shutdown; tie it to a termination path or justify with //discvet:ignore",
				funcDisplayName(fn))
			return
		} else {
			return // unanalyzable but not known-blocking: assume it terminates
		}
	} else {
		return // dynamic spawn target: nothing to classify
	}

	shape := classifyGoroutineBody(info, body)
	if !shape.suspicious() {
		return
	}
	if shape.ctxSignal {
		return
	}
	if (shape.chanOps || shape.chanRange) && !shape.endlessFor && spawnedChannelsClosed(info, body, closed, rename) {
		return
	}
	if shape.wgDone && spawnerWaits && !shape.endlessFor && !shape.chanRange {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine blocks on %s with no termination signal (ctx.Done, a channel the spawner closes, or a WaitGroup join); it may leak",
		shape.what)
}

// goBodyShape is what the leak heuristic saw in one spawned body.
type goBodyShape struct {
	endlessFor bool // for {} with no condition
	chanRange  bool // for range over a channel
	chanOps    bool // send, receive, or select without default
	blocking   bool // call matched by blockingSinks, or a one-hop callee that loops unboundedly
	ctxSignal  bool // <-ctx.Done() or ctx.Err() reachable in the body
	wgDone     bool // signals a sync.WaitGroup
	what       string
}

func (s *goBodyShape) suspicious() bool {
	return s.endlessFor || s.chanRange || s.chanOps || s.blocking
}

func (s *goBodyShape) note(cond *bool, what string) {
	if !*cond {
		*cond = true
		if s.what == "" {
			s.what = what
		}
	}
}

func classifyGoroutineBody(info *types.Info, body *ast.BlockStmt) *goBodyShape {
	s := &goBodyShape{}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			return false // its own goroutine discipline, if spawned
		case *ast.ForStmt:
			if x.Cond == nil {
				s.note(&s.endlessFor, "an unbounded loop")
			}
		case *ast.RangeStmt:
			if isChanExpr(info, x.X) {
				s.note(&s.chanRange, "a range over a channel")
			}
		case *ast.SendStmt:
			s.note(&s.chanOps, "a channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if isCtxDoneRecv(info, x.X) {
					s.ctxSignal = true
				} else {
					s.note(&s.chanOps, "a channel receive")
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				s.note(&s.chanOps, "a select with no default")
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, x)
			if fn == nil {
				return true
			}
			if isCtxMethod(fn, "Err") {
				s.ctxSignal = true
			}
			if isWaitGroupMethod(info, x, "Done") {
				s.wgDone = true
			}
			if matchAny(fn, blockingSinks) && !isWaitGroupMethod(info, x, "Wait") {
				s.note(&s.blocking, "blocking call "+funcDisplayName(fn))
			}
		}
		return true
	})
	return s
}

// isCtxDoneRecv matches the operand of a receive against
// context.Context.Done().
func isCtxDoneRecv(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isCtxMethod(calleeFunc(info, call), "Done")
}

func isCtxMethod(fn *types.Func, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		fn.Name() == name && recvTypeName(fn) == "Context"
}

// isWaitGroupMethod matches wg.Done() / wg.Wait() on sync.WaitGroup.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		fn.Name() == name && recvTypeName(fn) == "WaitGroup"
}

// containsWaitGroupWait reports whether the spawning function joins a
// WaitGroup anywhere in its body (including nested literals: the
// prewarm pool spawns from inside a closure, the Wait sits at the
// function's end).
func containsWaitGroupWait(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok && isWaitGroupMethod(info, call, "Wait") {
			found = true
		}
		return !found
	})
	return found
}

// channelsClosedIn collects the channel variables the function calls
// close() on (directly or in a defer).
func channelsClosedIn(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v, ok := info.Uses[arg].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// paramArgVars maps a spawned named function's parameter objects to
// the spawner's argument variables (identifier arguments only), so a
// channel the callee consumes as a parameter can be matched against a
// close() in the spawner.
func paramArgVars(callerInfo *types.Info, fn *types.Func, call *ast.CallExpr) map[*types.Var]*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return nil
	}
	out := map[*types.Var]*types.Var{}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok {
			if v, ok := callerInfo.Uses[id].(*types.Var); ok {
				out[sig.Params().At(i)] = v
			}
		}
	}
	return out
}

// spawnedChannelsClosed reports whether every channel the spawned body
// ranges over or receives from is closed by the spawner. One closed
// channel is enough when it is the only one the body consumes.
func spawnedChannelsClosed(info *types.Info, body *ast.BlockStmt, closed map[*types.Var]bool, rename map[*types.Var]*types.Var) bool {
	if len(closed) == 0 {
		return false
	}
	consumed, allResolved := consumedChannels(info, body)
	if !allResolved || len(consumed) == 0 {
		return false
	}
	for v := range consumed {
		if rv, ok := rename[v]; ok {
			v = rv
		}
		if !closed[v] {
			return false
		}
	}
	return true
}

// consumedChannels collects the channel variables the body receives
// from or ranges over; allResolved is false when a consumed channel is
// not a plain identifier.
func consumedChannels(info *types.Info, body *ast.BlockStmt) (map[*types.Var]bool, bool) {
	out := map[*types.Var]bool{}
	allResolved := true
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = true
				return
			}
		}
		allResolved = false
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if isChanExpr(info, x.X) {
				record(x.X)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !isCtxDoneRecv(info, x.X) {
				record(x.X)
			}
		}
		return true
	})
	return out, allResolved
}
