package analysis

// The SSA-lite layer under the v4 value-flow rules (poolescape,
// errdominate, onceonly). Full SSA over go/ast is overkill for the
// three properties discvet proves; what they actually need is
//
//   - a per-function control-flow graph whose edges remember which
//     branch of a condition they took (so a rule can learn "err == nil
//     holds here"),
//   - dominance information over that graph (so "checked before used"
//     is a graph property, not a lexical guess), and
//   - versioned definitions: each assignment to a variable starts a new
//     virtual register, so facts established about one definition never
//     leak onto the next one (the property SSA renaming buys, without
//     materializing phi nodes).
//
// The CFG is structural: it is built by a single walk of the body, one
// basic block per straight-line run of statements, with explicit edges
// for if/for/range/switch/select and a synthetic exit block every
// return jumps to. Deferred calls are replayed in the exit block in
// reverse registration order, which is where Go runs them — that is
// what makes `defer pool.Put(p)` a release *at function exit* rather
// than a release between two uses. Function literals are not inlined:
// each one is an independent root with its own CFG (the value-flow
// rules deliberately do not carry facts across the goroutine/defer
// boundary; see DESIGN.md §15).
//
// goto is rare enough in this codebase (absent) that the builder
// treats it as a terminator rather than modeling arbitrary jumps; the
// effect is over-approximation of facts after the jump, i.e. possible
// false negatives, never false positives.

import (
	"go/ast"
	"go/token"
)

// cfgEdge is one control-flow edge. Branch edges carry the condition
// expression and the truth value the edge assumes, so a dataflow can
// harvest facts ("this edge is only taken when err != nil is false").
type cfgEdge struct {
	from, to *cfgBlock
	// assumes lists the (condition, truth) facts that hold on this
	// edge; nil for unconditional edges.
	assumes []branchFact
}

// branchFact is one condition outcome assumed on an edge.
type branchFact struct {
	cond ast.Expr
	val  bool
}

// cfgBlock is one basic block: a maximal run of nodes with a single
// entry and exit. Nodes are statements and, for conditions, bare
// expressions, in execution order.
type cfgBlock struct {
	id    int
	nodes []ast.Node
	succs []*cfgEdge
	preds []*cfgEdge
	// terminated marks a block that never falls through (return, panic,
	// goto); the builder stops adding successors to it.
	terminated bool
	// pendingReturn marks a block ending in a return; the builder wires
	// it to the synthetic exit once that block exists.
	pendingReturn bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
	// idom[b.id] is b's immediate dominator block id, or -1 for the
	// entry (and for blocks unreachable from the entry).
	idom []int
}

// dominates reports whether block a dominates block b: every path from
// the entry to b passes through a. A block dominates itself.
func (g *funcCFG) dominates(a, b *cfgBlock) bool {
	for {
		if a == b {
			return true
		}
		next := g.idom[b.id]
		if next < 0 {
			return false
		}
		b = g.blocks[next]
	}
}

// cfgBuilder carries the under-construction graph.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
	// loop stack for break/continue targets.
	breaks    []*cfgBlock
	continues []*cfgBlock
	// defers accumulates deferred calls in registration order; they are
	// replayed into the exit block in reverse.
	defers []*ast.CallExpr
}

// replayedDefer wraps a deferred call replayed in the exit block, so a
// rule can tell "this call runs at function exit" apart from the same
// CallExpr at its registration site. Release semantics (pool.Put)
// belong at the replay; value-use checks belong at registration, where
// the arguments were actually evaluated — reporting uses at the replay
// would judge them against the merged all-paths exit state.
type replayedDefer struct{ *ast.CallExpr }

// buildCFG constructs the graph for one function body. The body's
// top-level statement list is walked structurally; nested function
// literals are left alone (callers analyze them as separate roots).
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}}
	entry := b.newBlock()
	b.g.entry = entry
	b.cur = entry
	b.stmts(body.List)
	exit := b.newBlock()
	b.g.exit = exit
	// The fallthrough off the end of the body reaches the exit, as does
	// every return (their edges were deferred until exit existed).
	if !b.cur.terminated {
		b.edge(b.cur, exit, nil)
	}
	for _, blk := range b.g.blocks {
		if blk.pendingReturn {
			b.edge(blk, exit, nil)
		}
	}
	// Deferred calls run on every exit path, last registered first.
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.nodes = append(exit.nodes, replayedDefer{b.defers[i]})
	}
	b.g.computeDominators()
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock, assumes []branchFact) {
	e := &cfgEdge{from: from, to: to, assumes: assumes}
	from.succs = append(from.succs, e)
	to.preds = append(to.preds, e)
}

// startBlock begins a new block reached unconditionally from the
// current one (unless the current block already terminated).
func (b *cfgBuilder) startBlock() *cfgBlock {
	nb := b.newBlock()
	if !b.cur.terminated {
		b.edge(b.cur, nb, nil)
	}
	b.cur = nb
	return nb
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur.terminated {
		// Dead code after return/panic: give it its own unreachable
		// block so its nodes still exist (rules skip unreachable blocks).
		b.cur = b.newBlock()
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmts(x.List)

	case *ast.IfStmt:
		if x.Init != nil {
			b.stmt(x.Init)
		}
		cond := b.cur
		cond.nodes = append(cond.nodes, x.Cond)

		then := b.newBlock()
		b.edge(cond, then, factsFor(x.Cond, true))
		b.cur = then
		b.stmts(x.Body.List)
		thenEnd := b.cur

		var elseEnd *cfgBlock
		if x.Else != nil {
			els := b.newBlock()
			b.edge(cond, els, factsFor(x.Cond, false))
			b.cur = els
			b.stmt(x.Else)
			elseEnd = b.cur
		}

		join := b.newBlock()
		if !thenEnd.terminated {
			b.edge(thenEnd, join, nil)
		}
		if x.Else != nil {
			if !elseEnd.terminated {
				b.edge(elseEnd, join, nil)
			}
		} else {
			b.edge(cond, join, factsFor(x.Cond, false))
		}
		b.cur = join

	case *ast.ForStmt:
		if x.Init != nil {
			b.stmt(x.Init)
		}
		head := b.startBlock()
		if x.Cond != nil {
			head.nodes = append(head.nodes, x.Cond)
		}
		after := b.newBlock()
		body := b.newBlock()
		if x.Cond != nil {
			b.edge(head, body, factsFor(x.Cond, true))
			b.edge(head, after, factsFor(x.Cond, false))
		} else {
			b.edge(head, body, nil)
			// An endless for still reaches after via break.
		}
		b.pushLoop(after, head)
		b.cur = body
		b.stmts(x.Body.List)
		if x.Post != nil {
			b.stmt(x.Post)
		}
		if !b.cur.terminated {
			b.edge(b.cur, head, nil) // back edge
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		head := b.startBlock()
		head.nodes = append(head.nodes, x) // the range operand evaluates here
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, nil)
		b.edge(head, after, nil)
		b.pushLoop(after, head)
		b.cur = body
		b.stmts(x.Body.List)
		if !b.cur.terminated {
			b.edge(b.cur, head, nil)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if x.Init != nil {
			b.stmt(x.Init)
		}
		head := b.cur
		if x.Tag != nil {
			head.nodes = append(head.nodes, x.Tag)
		}
		after := b.newBlock()
		b.pushBreak(after)
		sawDefault := false
		var negated []branchFact
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, caseFacts(x.Tag, cc))
			if cc.List == nil {
				sawDefault = true
			} else if x.Tag == nil {
				for _, e := range cc.List {
					negated = append(negated, branchFact{cond: e, val: false})
				}
			}
			b.cur = blk
			b.stmts(cc.Body)
			if !b.cur.terminated {
				b.edge(b.cur, after, nil)
			}
		}
		if !sawDefault {
			// No default: the switch can fall through without taking any
			// case. In a tagless switch that edge knows every case
			// condition was false.
			var facts []branchFact
			if x.Tag == nil {
				facts = negated
			}
			b.edge(head, after, facts)
		}
		b.popBreak()
		b.cur = after

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			b.stmt(x.Init)
		}
		head := b.cur
		head.nodes = append(head.nodes, x.Assign)
		after := b.newBlock()
		b.pushBreak(after)
		sawDefault := false
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				sawDefault = true
			}
			blk := b.newBlock()
			b.edge(head, blk, nil)
			b.cur = blk
			b.stmts(cc.Body)
			if !b.cur.terminated {
				b.edge(b.cur, after, nil)
			}
		}
		if !sawDefault {
			b.edge(head, after, nil)
		}
		b.popBreak()
		b.cur = after

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.pushBreak(after)
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, nil)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			if !b.cur.terminated {
				b.edge(b.cur, after, nil)
			}
		}
		b.popBreak()
		b.cur = after

	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, x)
		b.cur.pendingReturn = true
		b.cur.terminated = true

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			if t := b.breakTarget(); t != nil {
				b.edge(b.cur, t, nil)
			}
			b.cur.terminated = true
		case token.CONTINUE:
			if t := b.continueTarget(); t != nil {
				b.edge(b.cur, t, nil)
			}
			b.cur.terminated = true
		case token.GOTO:
			// Modeled as a terminator (see package comment).
			b.cur.terminated = true
		case token.FALLTHROUGH:
			// The next case edge is added by the switch handling; the
			// widened merge is already conservative.
		}

	case *ast.LabeledStmt:
		b.stmt(x.Stmt)

	case *ast.DeferStmt:
		// Argument expressions evaluate now; the call itself runs at
		// exit. The whole DeferStmt is kept in the current block so
		// rules can see argument evaluation, and the call is replayed
		// in the exit block.
		b.cur.nodes = append(b.cur.nodes, x)
		b.defers = append(b.defers, x.Call)

	case *ast.ExprStmt:
		b.cur.nodes = append(b.cur.nodes, x)
		if isTerminatingCall(x.X) {
			b.cur.terminated = true
		}

	default:
		// Assignments, declarations, go statements, sends, inc/dec:
		// straight-line nodes.
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushBreak(blk *cfgBlock) {
	b.breaks = append(b.breaks, blk)
	b.continues = append(b.continues, nil)
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

func (b *cfgBuilder) breakTarget() *cfgBlock {
	if len(b.breaks) == 0 {
		return nil
	}
	return b.breaks[len(b.breaks)-1]
}

func (b *cfgBuilder) continueTarget() *cfgBlock {
	for i := len(b.continues) - 1; i >= 0; i-- {
		if b.continues[i] != nil {
			return b.continues[i]
		}
	}
	return nil
}

// isTerminatingCall recognizes the calls after which control does not
// continue: panic and the unconditional process exits.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch pkg.Name + "." + fun.Sel.Name {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}

// factsFor decomposes a branch condition into the facts known on the
// edge that assumes it evaluated to val:
//
//   - cond           true edge: [cond=true],   false edge: [cond=false]
//   - !a             recurse with flipped val
//   - a && b, val=true:  both a and b are true; val=false: nothing
//   - a || b, val=false: both a and b are false; val=true: nothing
//
// Leaves are kept as expressions; the consuming rule decides which
// shapes (err == nil, err != nil) it can interpret.
func factsFor(cond ast.Expr, val bool) []branchFact {
	cond = ast.Unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return factsFor(x.X, !val)
		}
	case *ast.BinaryExpr:
		if x.Op == token.LAND && val {
			return append(factsFor(x.X, true), factsFor(x.Y, true)...)
		}
		if x.Op == token.LOR && !val {
			return append(factsFor(x.X, false), factsFor(x.Y, false)...)
		}
	}
	return []branchFact{{cond: cond, val: val}}
}

// caseFacts derives edge facts for one case clause of a switch.
// Tagless switches treat a single-expression case like an if condition;
// a tag of the form `switch err { case nil: }` yields err==nil facts by
// synthesizing nothing (the consuming rule only reads binary
// comparisons) — kept simple on purpose.
func caseFacts(tag ast.Expr, cc *ast.CaseClause) []branchFact {
	if tag != nil || len(cc.List) != 1 {
		return nil
	}
	return factsFor(cc.List[0], true)
}

// computeDominators fills idom with the immediate dominator of every
// block, using the simple iterative algorithm over a reverse postorder
// (Cooper/Harvey/Kennedy). Function-sized graphs make the O(n²) worst
// case irrelevant.
func (g *funcCFG) computeDominators() {
	n := len(g.blocks)
	g.idom = make([]int, n)
	for i := range g.idom {
		g.idom[i] = -1
	}
	if n == 0 {
		return
	}
	// Reverse postorder from the entry.
	order := make([]*cfgBlock, 0, n)
	seen := make([]bool, n)
	var dfs func(*cfgBlock)
	dfs = func(b *cfgBlock) {
		seen[b.id] = true
		for _, e := range b.succs {
			if !seen[e.to.id] {
				dfs(e.to)
			}
		}
		order = append(order, b)
	}
	dfs(g.entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i, b := range order {
		rpoNum[b.id] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = g.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = g.idom[b]
			}
		}
		return a
	}

	g.idom[g.entry.id] = g.entry.id
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.entry {
				continue
			}
			newIdom := -1
			for _, e := range b.preds {
				p := e.from.id
				if !seen[p] || g.idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && g.idom[b.id] != newIdom {
				g.idom[b.id] = newIdom
				changed = true
			}
		}
	}
	// Entry's idom is conventionally itself during iteration; expose -1.
	g.idom[g.entry.id] = -1
}

// reachable reports whether the block is reachable from the entry
// (unreachable blocks hold dead code; rules skip them).
func (g *funcCFG) reachable(b *cfgBlock) bool {
	return b == g.entry || g.idom[b.id] >= 0
}
