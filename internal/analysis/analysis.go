// Package analysis is discvet: a project-specific static-analysis
// framework for the XML-security stack, built only on the standard
// library (go/ast, go/parser, go/token, go/types).
//
// The framework has three parts: a loader that parses and type-checks
// the module's packages (driver.go), a suppression layer that honours
// `//discvet:ignore <rule>` comments (suppress.go), and a registry of
// project-specific analyzers. Each analyzer enforces one invariant the
// paper's Verifier/Decryptor threat model depends on:
//
//   - cryptocompare: digest/MAC/signature/secret comparisons in the
//     crypto packages must go through crypto/subtle (or hmac.Equal),
//     never bytes.Equal, ==, or reflect.DeepEqual.
//   - weakrand: math/rand must never produce key material, IVs,
//     nonces, or session tokens.
//   - errwrap: fmt.Errorf with an error argument must wrap with %w so
//     sentinel checks (errors.Is/As) keep working across layers.
//   - xmlparse: untrusted XML is decoded only by the hardened parser
//     in internal/xmldom; direct encoding/xml use elsewhere reopens
//     XXE/wrapping attack surface.
//   - locksafety: no lock-by-value copies, and no return while a
//     sync.Mutex/RWMutex is held by a defer-less Lock. Since v3 the
//     held-lock tracking comes from the shared lockset engine
//     (locksets.go) that also powers lockorder.
//   - httpclient: the networked packages (server, keymgmt, player)
//     must never use http.DefaultClient or a zero-Timeout
//     http.Client; every remote call needs a deadline so failures
//     enter the resilience retry/degrade path.
//   - obsctx: exported pipeline entry points (player, core, server)
//     that accept a context.Context must propagate it to the
//     context-aware functions they call; a dropped ctx severs both
//     cancellation and the observability recorder it carries.
//   - taintflow: interprocedural verify-before-execute — no dataflow
//     path from a disc/network source to script execution or markup
//     rendering may skip the Verifier (core.Open*/xmldsig.Verify*).
//     Built on the module-wide call graph (callgraph.go) and taint
//     engine (taint.go).
//   - unverifiedwrite: unverified network bytes must not reach durable
//     trust-relevant stores (local storage, disc-image persistence,
//     the PEM key store).
//   - auditpath: deny/fail-closed branches in core, access, and player
//     must emit an obs audit event before returning, so the audit ring
//     records every security refusal.
//   - lockorder: interprocedural deadlock analysis — per-function
//     lockset summaries to a fixpoint, a module-wide
//     lock-acquisition-order graph whose cycles are potential
//     deadlocks, and no indefinite wait (channel op, blocking sink)
//     while a mutex is held (locksets.go, lockorder.go).
//   - goroutineleak: every `go` statement needs a termination signal
//     reachable from the spawn site — ctx.Done, a channel the spawner
//     closes, or a WaitGroup join.
//   - hotpathalloc: functions annotated //discvet:hotpath (and their
//     static callees, up to a //discvet:coldpath boundary) must not
//     allocate: no fmt calls, map/slice literals, unpreallocated
//     append, capturing closures, or interface boxing.
//   - readerfirst: payloads buffered with io.ReadAll must not be
//     re-wrapped in a bytes/strings reader just to call a streaming
//     verification entry (core.Opener.OpenReader, library OpenReader,
//     player LoadFrom, xmldom.Parse, xmldsig digest streams); pass
//     the original reader through, or use the []byte API form.
//   - poolescape: values from sync.Pool.Get (or pooled module helpers,
//     found interprocedurally) must not be used, aliased, or returned
//     after their Put, and never Put twice on any path. Built on the
//     SSA-lite value-flow layer (ssa.go, flow.go).
//   - errdominate: the non-error results of core.Open*,
//     xmldsig.Verify*/Digest*, library.Open*, and xmlenc.Decrypt* may
//     only be used on paths dominated by an err == nil check of the
//     producing call's error — the fail-closed discipline the paper's
//     Verifier depends on.
//   - onceonly: one-shot readers (request bodies, OpenReader-family
//     arguments) must not be consumed twice or re-wrapped after a
//     partial read; both silently verify the wrong bytes.
//
// Diagnostics carry file:line:col positions. A finding can be
// suppressed with a justified comment on the same line or the line
// directly above:
//
//	//discvet:ignore cryptocompare public value, not secret-dependent
//
// A directive naming a rule that does not exist — or that fires no
// finding on that line under the selected rules — is itself reported
// (as discvet / uselessignore), so suppressions cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// runParallelism bounds the analyzer worker pool: enough to keep the
// cores busy, capped so a large machine does not thrash the type-info
// caches.
func runParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Analyzer is one named rule. Per-package rules set Run and inspect a
// single package via its Pass; module-level rules (the interprocedural
// dataflow rules) set RunModule and see every loaded package plus the
// shared call graph at once. Exactly one of Run/RunModule is set.
type Analyzer struct {
	// Name identifies the rule in output and in ignore directives.
	Name string
	// Doc is a one-line description shown by `discvet -rules`.
	Doc string
	// Run executes the rule against one package.
	Run func(*Pass)
	// RunModule executes the rule once over the whole package set.
	RunModule func(*ModulePass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path (e.g. discsec/internal/disc).
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass carries the whole loaded package set through one
// module-level analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	// Graph is the module-wide call graph, shared between module-level
	// analyzers in one Run.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding with a resolved source position.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Analyzers returns the full registry, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CryptoCompare,
		WeakRand,
		ErrWrap,
		XMLParse,
		LockSafety,
		HTTPClient,
		ObsCtx,
		Taintflow,
		UnverifiedWrite,
		AuditPath,
		LockOrder,
		GoroutineLeak,
		HotPathAlloc,
		ReaderFirst,
		PoolEscape,
		ErrDominate,
		OnceOnly,
	}
}

// ByName resolves a registered analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages and returns the
// surviving diagnostics: suppressed findings are dropped, ignore
// directives naming unknown rules are reported, and directives that
// suppress nothing under the selected rules are reported as
// uselessignore. The result is sorted by position then rule.
//
// Analyzer execution is parallel under a bounded worker pool: every
// (package, per-package rule) pair and every module rule is an
// independent unit writing into its own diagnostic slot, and the slots
// are concatenated in registry order before the final sort — so the
// output is byte-for-byte identical to the sequential driver's.
// Loading and type-checking stay sequential in the Loader; analyzers
// only read the shared type information, which is what makes the
// fan-out safe.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	type unit struct {
		run   func(diags *[]Diagnostic)
		diags []Diagnostic
	}
	var units []*unit
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pkg, a := pkg, a
			units = append(units, &unit{run: func(diags *[]Diagnostic) {
				a.Run(&Pass{
					Analyzer: a,
					Fset:     pkg.Fset,
					Path:     pkg.Path,
					Files:    pkg.Files,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					diags:    diags,
				})
			}})
		}
	}
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		a, graph := a, graph
		units = append(units, &unit{run: func(diags *[]Diagnostic) {
			mp := &ModulePass{Analyzer: a, Pkgs: pkgs, Graph: graph, diags: diags}
			if len(pkgs) > 0 {
				mp.Fset = pkgs[0].Fset
			}
			a.RunModule(mp)
		}})
	}

	sem := make(chan struct{}, runParallelism())
	var wg sync.WaitGroup
	for _, u := range units {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			u.run(&u.diags)
		}()
	}
	wg.Wait()

	var raw []Diagnostic
	for _, u := range units {
		raw = append(raw, u.diags...)
	}
	diags := applySuppressions(pkgs, analyzers, raw)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
