package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AuditPath enforces the observability half of fail-closed behavior:
// when the trusted-path packages (core, access, player) refuse to
// proceed — a signature fails verification, a runtime permission check
// denies an operation, or a fail-closed sentinel error is returned —
// the refusing branch must emit an obs audit event, so the bounded
// audit ring (DESIGN.md §9) records every security decision, not just
// the ones a layer happened to remember to log.
//
// Three branch shapes are checked:
//
//  1. verify-failure: `if err != nil { ... return ... }` where err came
//     from a leaf verifier call (xmldsig.Verify/VerifyDocument). Calls
//     to core.Open*/VerifyDetached are exempt: those audit internally.
//  2. runtime deny: `if !grants.Allows(...) { ... }`.
//  3. fail-closed sentinel: `return ..., ErrSomethingRequired` (or
//     Denied/Revoked/Forbidden/Untrusted) with no audit earlier in the
//     same block.
//
// An audit is any call to a function or method named Audit, found
// directly in the branch or inside a function literal bound to a local
// variable the branch calls (the deny-closure idiom).
var AuditPath = &Analyzer{
	Name: "auditpath",
	Doc:  "deny/fail-closed branches in core, access, and player must emit an obs audit event before returning",
	Run:  runAuditPath,
}

var auditPathPackages = []string{"core", "access", "player"}

// auditVerifiers are the leaf verification calls whose failure is a
// security decision the caller must audit.
var auditVerifiers = []FuncRef{
	{Pkg: pkgXMLDSig, Name: "Verify"},
	{Pkg: pkgXMLDSig, Name: "VerifyDocument"},
}

// auditDenyChecks are runtime permission predicates; a negated check
// guards a deny branch.
var auditDenyChecks = []FuncRef{
	{Pkg: pkgAccess, Recv: "GrantSet", Name: "Allows"},
}

// failClosedWords classify package-level Err* sentinels that represent
// a refusal rather than a mere failure.
var failClosedWords = map[string]bool{
	"required": true, "denied": true, "revoked": true,
	"forbidden": true, "untrusted": true,
}

func runAuditPath(pass *Pass) {
	if !pathHasInternalPkg(pass.Path, auditPathPackages...) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ap := &auditPathCheck{pass: pass, closures: localClosures(pass.Info, fd.Body)}
			ap.walkStmts(fd.Body.List)
			// Function literals (host-API bindings, handlers) are
			// separate roots: the statement walker does not descend
			// into expressions, so each literal body is visited
			// exactly once here.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					ap.walkStmts(lit.Body.List)
				}
				return true
			})
		}
	}
}

type auditPathCheck struct {
	pass     *Pass
	closures map[types.Object]*ast.FuncLit
}

// localClosures indexes `name := func(...){...}` bindings so a branch
// calling deny(...) is credited with the closure's audit call.
func localClosures(info *types.Info, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = lit
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = lit
			}
		}
		return true
	})
	return out
}

// walkStmts traverses a statement list, tracking preceding siblings so
// the `v, err := verify(...); if err != nil` split form resolves.
func (ap *auditPathCheck) walkStmts(list []ast.Stmt) {
	for i, s := range list {
		var prev ast.Stmt
		if i > 0 {
			prev = list[i-1]
		}
		ap.walkStmt(s, prev, list[:i])
	}
}

func (ap *auditPathCheck) walkStmt(s, prev ast.Stmt, before []ast.Stmt) {
	switch x := s.(type) {
	case *ast.IfStmt:
		ap.checkIf(x, prev)
		ap.walkStmts(x.Body.List)
		if x.Else != nil {
			// An `else if` sees the enclosing if's init, not a sibling.
			ap.walkStmt(x.Else, nil, nil)
		}
	case *ast.BlockStmt:
		ap.walkStmts(x.List)
	case *ast.ForStmt:
		ap.walkStmts(x.Body.List)
	case *ast.RangeStmt:
		ap.walkStmts(x.Body.List)
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ap.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ap.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ap.walkStmts(cc.Body)
			}
		}
	case *ast.ReturnStmt:
		ap.checkSentinelReturn(x, before)
	case *ast.LabeledStmt:
		ap.walkStmt(x.Stmt, prev, before)
	}
}

// checkIf applies shapes 1 and 2 to one if statement.
func (ap *auditPathCheck) checkIf(ifs *ast.IfStmt, prev ast.Stmt) {
	// Shape 2: negated permission check.
	if un, ok := ast.Unparen(ifs.Cond).(*ast.UnaryExpr); ok && un.Op == token.NOT {
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); ok {
			if matchAny(calleeFunc(ap.pass.Info, call), auditDenyChecks) {
				if !ap.branchAudits(ifs.Body) {
					ap.pass.Reportf(ifs.Pos(),
						"permission-denied branch does not emit an obs audit event; record the refusal (Recorder.Audit) before returning")
				}
				return
			}
		}
	}

	// Shape 1: err != nil from a verifier call, branch returns.
	errObj := errNotNilCond(ap.pass.Info, ifs.Cond)
	if errObj == nil {
		return
	}
	var origin *ast.CallExpr
	if ifs.Init != nil {
		origin = assignedCall(ap.pass.Info, ifs.Init, errObj)
	}
	if origin == nil && prev != nil {
		origin = assignedCall(ap.pass.Info, prev, errObj)
	}
	if origin == nil || !matchAny(calleeFunc(ap.pass.Info, origin), auditVerifiers) {
		return
	}
	if !branchReturns(ifs.Body) {
		return
	}
	if !ap.branchAudits(ifs.Body) {
		ap.pass.Reportf(ifs.Pos(),
			"verification-failure branch does not emit an obs audit event; record the refusal (Recorder.Audit) before returning")
	}
}

// checkSentinelReturn applies shape 3: a direct return of a fail-closed
// sentinel must have an audit earlier in its innermost block.
func (ap *auditPathCheck) checkSentinelReturn(ret *ast.ReturnStmt, before []ast.Stmt) {
	sentinel := false
	for _, res := range ret.Results {
		if isFailClosedSentinel(ap.pass.Info, res) {
			sentinel = true
			break
		}
	}
	if !sentinel {
		return
	}
	for _, s := range before {
		if ap.stmtAudits(s, 2) {
			return
		}
	}
	ap.pass.Reportf(ret.Pos(),
		"fail-closed sentinel returned without an obs audit event; record the refusal (Recorder.Audit) before returning")
}

// isFailClosedSentinel reports whether e names a package-level error
// variable whose Err*-style name carries a fail-closed word.
func isFailClosedSentinel(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	words := splitWords(v.Name())
	if len(words) == 0 || words[0] != "err" {
		return false
	}
	for _, w := range words[1:] {
		if failClosedWords[w] {
			return true
		}
	}
	return false
}

// errNotNilCond matches `x != nil` (either side) where x is an
// identifier of error type, returning its object.
func errNotNilCond(info *types.Info, cond ast.Expr) types.Object {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return nil
	}
	operand := bin.X
	if id, ok := ast.Unparen(bin.X).(*ast.Ident); ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil") {
		operand = bin.Y
	} else if id, ok := ast.Unparen(bin.Y).(*ast.Ident); !ok || id.Name != "nil" {
		return nil
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil || !types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	return obj
}

// assignedCall returns the call expression assigned to obj in stmt, or
// nil.
func assignedCall(info *types.Info, stmt ast.Stmt, obj types.Object) *ast.CallExpr {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if info.Defs[id] == obj || info.Uses[id] == obj {
			return call
		}
	}
	return nil
}

func branchReturns(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// branchAudits reports whether the branch body contains an audit call,
// expanding one level of local-closure calls.
func (ap *auditPathCheck) branchAudits(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if ap.stmtAudits(s, 2) {
			return true
		}
	}
	return false
}

func (ap *auditPathCheck) stmtAudits(s ast.Stmt, depth int) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isAuditCall(call) {
			found = true
			return false
		}
		if depth > 0 {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if lit, ok := ap.closures[ap.pass.Info.Uses[id]]; ok {
					for _, inner := range lit.Body.List {
						if ap.stmtAudits(inner, depth-1) {
							found = true
							return false
						}
					}
				}
			}
		}
		return true
	})
	return found
}

// isAuditCall matches a call to any function or method named Audit.
func isAuditCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "Audit"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Audit"
	}
	return false
}
