package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A Baseline records known-accepted findings so CI fails only on NEW
// findings. Entries match on (rule, file, message) — deliberately not
// on line numbers, so unrelated edits above a known finding do not
// break the build — with a count capping how many identical findings
// the file may carry.
type Baseline struct {
	// Version is the file-format version (currently 1).
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted finding shape.
type BaselineEntry struct {
	Rule string `json:"rule"`
	// File is the module-root-relative path, forward slashes.
	File    string `json:"file"`
	Message string `json:"message"`
	// Count is how many findings with this shape are accepted.
	Count int `json:"count"`
}

// baselineKey is the matching identity of an entry.
type baselineKey struct{ rule, file, message string }

// relFile normalizes a diagnostic filename to a root-relative
// forward-slash path for stable baselines and SARIF URIs.
func relFile(root, filename string) string {
	if root != "" && filepath.IsAbs(filename) {
		if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}

// NewBaseline captures the diagnostics as an accepted baseline, with
// file paths relative to root.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	counts := map[baselineKey]int{}
	var order []baselineKey
	for _, d := range diags {
		k := baselineKey{d.Rule, relFile(root, d.Pos.Filename), d.Message}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.rule != b.rule {
			return a.rule < b.rule
		}
		return a.message < b.message
	})
	b := &Baseline{Version: 1}
	for _, k := range order {
		b.Entries = append(b.Entries, BaselineEntry{Rule: k.rule, File: k.file, Message: k.message, Count: counts[k]})
	}
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	return b
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("analysis: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Save writes the baseline to path, indented for reviewable diffs.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the diagnostics not covered by the baseline: each
// entry absorbs up to Count matching findings.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	remaining := map[baselineKey]int{}
	for _, e := range b.Entries {
		remaining[baselineKey{e.Rule, e.File, e.Message}] += e.Count
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey{d.Rule, relFile(root, d.Pos.Filename), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
