package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap reports fmt.Errorf calls that format an error argument
// without a %w verb. Unwrapped errors break errors.Is/errors.As
// across the stack's layers — callers match sentinel errors like
// xmldsig.ErrNoSignature through several wrapping hops, and a single
// %v in the chain silently severs it.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must wrap it with %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isPkgFunc(calleeFunc(pass.Info, call), "fmt", "Errorf") {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := pass.Info.Types[arg].Type
				if t == nil || !types.Implements(t, errIface) {
					continue
				}
				pass.Reportf(call.Pos(),
					"fmt.Errorf formats an error without %%w; wrap it so errors.Is/As keep working")
				break
			}
			return true
		})
	}
}
