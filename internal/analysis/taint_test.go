package analysis

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestTaintflowFixture(t *testing.T) {
	pkg := loadFixture(t, "taintflow", "discsec/internal/tffixture")
	checkFixture(t, pkg, Taintflow)
}

// Deleting the sanitizer call must flip the verdict: the nosan fixture
// is the taintflow fixture's sanitized/verifiedDoc pair with the
// core.Opener.Open / xmldsig.VerifyDocument calls removed.
func TestSanitizerDeletionFlipsVerdict(t *testing.T) {
	stripped := loadFixture(t, "taintflow_nosan", "discsec/internal/tfnsfixture")
	checkFixture(t, stripped, Taintflow)
	diags := Run([]*Package{stripped}, []*Analyzer{Taintflow})
	if len(diags) != 2 {
		t.Errorf("sanitizer-less twin: got %d findings, want 2: %v", len(diags), diags)
	}
}

// TestLibraryFlowFixture pins the library sanitizer entries: content
// served through internal/library's verified entry points is clean,
// while flows that bypass the library still flag.
func TestLibraryFlowFixture(t *testing.T) {
	pkg := loadFixture(t, "libraryflow", "discsec/internal/server/lffixture")
	checkFixture(t, pkg, Taintflow)
	diags := Run([]*Package{pkg}, []*Analyzer{Taintflow})
	if len(diags) != 2 {
		t.Errorf("got %d findings, want the 2 bypass flows: %v", len(diags), diags)
	}
}

func TestUnverifiedWriteFixture(t *testing.T) {
	pkg := loadFixture(t, "unverifiedwrite", "discsec/internal/server/uwfixture")
	checkFixture(t, pkg, UnverifiedWrite)
}

func TestAuditPathFixture(t *testing.T) {
	pkg := loadFixture(t, "auditpath", "discsec/internal/player/apfixture")
	checkFixture(t, pkg, AuditPath)
}

func TestAuditPathOutsideTrustedPackages(t *testing.T) {
	// The same deny branches loaded outside core/access/player must be
	// clean: the rule is scoped to the trusted-path packages.
	pkg := loadFixture(t, "auditpath", "discsec/internal/xmldom/apfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{AuditPath}); len(diags) != 0 {
		t.Errorf("got %d diagnostics outside trusted-path packages, want 0: %v", len(diags), diags)
	}
}

func TestUselessIgnore(t *testing.T) {
	pkg := loadFixture(t, "uselessignore", "discsec/internal/uifixture")

	diags := Run([]*Package{pkg}, []*Analyzer{ErrWrap})
	var useless []Diagnostic
	for _, d := range diags {
		switch d.Rule {
		case "errwrap":
			t.Errorf("suppressed errwrap finding leaked through: %v", d)
		case "uselessignore":
			useless = append(useless, d)
		}
	}
	if len(useless) != 1 {
		t.Fatalf("got %d uselessignore diagnostics, want 1: %v", len(useless), diags)
	}
	if !strings.Contains(useless[0].Message, `"errwrap"`) {
		t.Errorf("uselessignore message does not name the rule: %v", useless[0])
	}

	// With a rule set that does not include errwrap, no verdict is
	// possible on the directives, so nothing is reported.
	if diags := Run([]*Package{pkg}, []*Analyzer{WeakRand}); len(diags) != 0 {
		t.Errorf("got %d diagnostics with errwrap unselected, want 0: %v", len(diags), diags)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	pkg := loadFixture(t, "taintflow_nosan", "discsec/internal/tfnsfixture")
	diags := Run([]*Package{pkg}, []*Analyzer{Taintflow})
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings to baseline")
	}

	b := NewBaseline(diags, "")
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if !reflect.DeepEqual(loaded, b) {
		t.Errorf("baseline did not round-trip:\nsaved  %+v\nloaded %+v", b, loaded)
	}

	// Emit -> load -> re-run: zero new findings.
	if left := loaded.Filter(diags, ""); len(left) != 0 {
		t.Errorf("baseline left %d findings, want 0: %v", len(left), left)
	}

	// A finding not in the baseline survives the filter.
	extra := Diagnostic{
		Rule:    "taintflow",
		Pos:     token.Position{Filename: "other.go", Line: 3, Column: 1},
		Message: "a brand-new finding",
	}
	if left := loaded.Filter(append(diags, extra), ""); len(left) != 1 || left[0].Message != extra.Message {
		t.Errorf("new finding did not survive the baseline: %v", left)
	}
}

// TestSARIFShape validates the emitted log against the SARIF 2.1.0
// shape: $schema/version at top level, runs[].tool.driver with a rule
// table, and results with ruleId, message.text, and physical locations.
func TestSARIFShape(t *testing.T) {
	diags := []Diagnostic{{
		Rule:    "taintflow",
		Pos:     token.Position{Filename: "/mod/internal/player/engine.go", Line: 10, Column: 3},
		Message: "unverified content",
	}}
	out, err := SARIFReport(diags, Analyzers(), "/mod")
	if err != nil {
		t.Fatalf("SARIFReport: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want the 2.1.0 schema URL", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "discvet" {
		t.Errorf("driver name = %q, want discvet", run.Tool.Driver.Name)
	}
	// Every analyzer plus the two suppression pseudo-rules.
	if want := len(Analyzers()) + 2; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "taintflow" || res.Level != "error" || res.Message.Text != "unverified content" {
		t.Errorf("unexpected result: %+v", res)
	}
	if !ruleIDs[res.RuleID] {
		t.Errorf("result ruleId %q not in the driver rule table", res.RuleID)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("got %d locations, want 1", len(res.Locations))
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/player/engine.go" {
		t.Errorf("uri = %q, want root-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 10 || loc.Region.StartColumn != 3 {
		t.Errorf("region = %+v, want 10:3", loc.Region)
	}
}

func TestJSONReport(t *testing.T) {
	diags := []Diagnostic{{
		Rule:    "auditpath",
		Pos:     token.Position{Filename: "/mod/internal/core/open.go", Line: 7, Column: 2},
		Message: "no audit",
	}}
	out, err := JSONReport(diags, "/mod")
	if err != nil {
		t.Fatalf("JSONReport: %v", err)
	}
	var got []map[string]any
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1", len(got))
	}
	if got[0]["rule"] != "auditpath" || got[0]["file"] != "internal/core/open.go" ||
		got[0]["line"] != float64(7) || got[0]["message"] != "no audit" {
		t.Errorf("unexpected entry: %v", got[0])
	}
}

// TestConcurrentDrivers runs every analyzer over every module package
// from several goroutines at once: the driver and the dataflow engine
// must be safe to run concurrently over a shared package set, and the
// fixpoint must be deterministic.
func TestConcurrentDrivers(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	const workers = 4
	results := make([][]Diagnostic, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = Run(pkgs, Analyzers())
		}(i)
	}
	wg.Wait()

	if len(results[0]) != 0 {
		t.Errorf("module tree is not clean: %v", results[0])
	}
	for i := 1; i < workers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("run %d differed from run 0:\n%v\nvs\n%v", i, results[i], results[0])
		}
	}
}
