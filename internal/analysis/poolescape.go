package analysis

// poolescape: lifetime soundness for sync.Pool-owned values. Once a
// value is Put back — directly, through a deferred Put, or through a
// module helper whose flow summary releases it (xmlstream's putParser)
// — the pool may hand it to another goroutine at any moment, so every
// later read through any alias is a data race in waiting, and a second
// Put makes the pool hold the same object twice. The rule is a MAY
// analysis over the value-flow framework: released on any path to a
// use is enough to flag the use.

import (
	"go/ast"
	"go/types"
)

// PoolEscape flags uses, aliases, and returns of a pooled value after
// its Put, and double Puts, on any path.
var PoolEscape = &Analyzer{
	Name:      "poolescape",
	Doc:       "values from sync.Pool.Get (or pooled helpers) must not be used, aliased, or returned after their Put, and never Put twice on any path",
	RunModule: runPoolEscape,
}

// Abstract register states. Zero means untracked.
const (
	poolLive     uint8 = 1
	poolReleased uint8 = 2
)

func runPoolEscape(pass *ModulePass) {
	runFlowModule(pass, &poolEscapeRule{sums: pass.Graph.flowSums()}, nil)
}

type poolEscapeRule struct {
	sums map[*types.Func]*flowSummary
}

// mergeVal: released on any path wins (MAY analysis).
func (r *poolEscapeRule) mergeVal(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func (r *poolEscapeRule) applyFact(fa *flowAnalysis, st *flowState, f branchFact) {}

func (r *poolEscapeRule) transferNode(fa *flowAnalysis, st *flowState, n ast.Node) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			r.scanExpr(fa, st, rhs)
		}
		if len(x.Lhs) == len(x.Rhs) {
			for i := range x.Lhs {
				r.bind(fa, st, x.Lhs[i], x.Rhs[i])
			}
			return
		}
		// Tuple assignment: no single producer expression per name.
		for _, lhs := range x.Lhs {
			if obj := assignedObj(fa.info, lhs); obj != nil {
				delete(st.objs, obj)
			}
		}

	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				r.scanExpr(fa, st, v)
			}
			if len(vs.Names) == len(vs.Values) {
				for i := range vs.Names {
					r.bind(fa, st, vs.Names[i], vs.Values[i])
				}
			}
		}

	case *ast.ReturnStmt:
		for _, res := range x.Results {
			regs := r.regsOf(fa, st, res)
			released := false
			for _, reg := range regs {
				if st.vals[reg] == poolReleased {
					released = true
					fa.reportf(res.Pos(), "pooled %s returned after Put; the pool may already have handed it to another goroutine", fa.regs[reg].name)
				}
			}
			if !released {
				r.scanExpr(fa, st, res)
			}
		}

	case *ast.DeferStmt:
		// Registration: arguments evaluate now; the call itself runs at
		// exit and is handled by the replayedDefer node there.
		r.scanCallOperands(fa, st, x.Call)

	case *ast.GoStmt:
		// The spawned call runs at an unknowable time; only argument
		// evaluation happens here.
		r.scanCallOperands(fa, st, x.Call)

	case replayedDefer:
		r.call(fa, st, x.CallExpr)

	case *ast.RangeStmt:
		// Only the range operand evaluates in this block; the body lives
		// in its own blocks.
		r.scanExpr(fa, st, x.X)

	case *ast.ExprStmt:
		r.scanExpr(fa, st, x.X)

	case ast.Expr:
		// Branch conditions.
		r.scanExpr(fa, st, x)

	case *ast.IncDecStmt:
		r.scanExpr(fa, st, x.X)

	case *ast.SendStmt:
		r.scanExpr(fa, st, x.Chan)
		r.scanExpr(fa, st, x.Value)
	}
}

// scanExpr walks one expression: identifiers are use-checked, calls get
// their release semantics. Function literals are separate roots.
func (r *poolEscapeRule) scanExpr(fa *flowAnalysis, st *flowState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			r.call(fa, st, x)
			return false
		case *ast.Ident:
			r.useCheck(fa, st, x)
		}
		return true
	})
}

// scanCallOperands scans a call's receiver and arguments as plain uses
// without applying the call's release semantics.
func (r *poolEscapeRule) scanCallOperands(fa *flowAnalysis, st *flowState, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		r.scanExpr(fa, st, sel.X)
	}
	for _, a := range call.Args {
		r.scanExpr(fa, st, a)
	}
}

// call interprets one call: a direct Pool.Put releases its argument
// (double release reported), a summarized module callee releases the
// effective parameters its summary says it does, everything else is
// argument uses.
func (r *poolEscapeRule) call(fa *flowAnalysis, st *flowState, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		r.scanExpr(fa, st, sel.X)
	}
	fn := calleeFunc(fa.info, call)

	if fn != nil && matchAny(fn, poolPutFuncs) && len(call.Args) == 1 {
		regs := r.regsOf(fa, st, call.Args[0])
		for _, reg := range regs {
			if st.vals[reg] == poolReleased {
				fa.reportf(call.Lparen, "pooled %s Put again; it was already released on this path", fa.regs[reg].name)
			}
			st.vals[reg] = poolReleased
		}
		if len(regs) == 0 {
			r.scanExpr(fa, st, call.Args[0])
		}
		return
	}

	for _, a := range call.Args {
		r.scanExpr(fa, st, a)
	}
	if fn == nil {
		return
	}
	if sum, ok := r.sums[fn]; ok && sum.releases != 0 {
		args := effectiveArgs(fa.info, call)
		for i, a := range args {
			if sum.releases&summaryBit(i) == 0 {
				continue
			}
			for _, reg := range r.regsOf(fa, st, a) {
				if st.vals[reg] == poolReleased {
					fa.reportf(call.Lparen, "pooled %s Put again (via %s); it was already released on this path", fa.regs[reg].name, funcDisplayName(fn))
				}
				st.vals[reg] = poolReleased
			}
		}
	}
}

func (r *poolEscapeRule) useCheck(fa *flowAnalysis, st *flowState, id *ast.Ident) {
	obj := fa.info.Uses[id]
	if obj == nil {
		return
	}
	for _, reg := range st.objs[obj] {
		if st.vals[reg] == poolReleased {
			fa.reportf(id.Pos(), "pooled %s used after Put; the pool may already have handed it to another goroutine", fa.regs[reg].name)
		}
	}
}

// bind updates the abstract store for one lhs := rhs pair: a pooled
// producer starts a live register, an alias shares the source's
// registers, anything else clears the name.
func (r *poolEscapeRule) bind(fa *flowAnalysis, st *flowState, lhs, rhs ast.Expr) {
	obj := assignedObj(fa.info, lhs)
	if obj == nil {
		return
	}
	e := unwrapValueExpr(rhs)
	if call, ok := e.(*ast.CallExpr); ok {
		fn := calleeFunc(fa.info, call)
		pooled := fn != nil && matchAny(fn, poolGetFuncs)
		if !pooled && fn != nil {
			if sum, ok := r.sums[fn]; ok && sum.returnsPooled {
				pooled = true
			}
		}
		if pooled {
			reg := fa.register(call.Lparen, obj.Name(), obj)
			st.objs[obj] = []vreg{reg}
			st.vals[reg] = poolLive
			return
		}
	}
	if regs := r.regsOf(fa, st, rhs); len(regs) > 0 {
		st.objs[obj] = append([]vreg(nil), regs...)
		return
	}
	delete(st.objs, obj)
}

// regsOf resolves an expression to the registers it names, through
// parens, type assertions, unary ops, and dereferences.
func (r *poolEscapeRule) regsOf(fa *flowAnalysis, st *flowState, e ast.Expr) []vreg {
	e = unwrapValueExpr(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := fa.info.Uses[id]
	if obj == nil {
		return nil
	}
	return st.objs[obj]
}

// assignedObj resolves the object a plain-identifier lhs writes to
// (either a fresh definition or a reuse), or nil for blanks and
// non-identifier targets.
func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// unwrapValueExpr strips the wrappers that preserve value identity:
// parens, type assertions, &x, and *x.
func unwrapValueExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			if x.Type == nil {
				return e // type-switch guard
			}
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}
