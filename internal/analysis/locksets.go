package analysis

// The shared lockset engine behind the lockorder and locksafety rules.
//
// The engine has two layers. The summary layer computes, to a least
// fixpoint over the module call graph, which named mutex objects each
// function may acquire (transitively) and whether it may block
// indefinitely (channel operations, selects without a default, or a
// call matched by the blockingSinks table in lockrules.go). Summaries
// only grow and both lattices are finite, so the fixpoint terminates.
//
// The walk layer re-traverses every function body tracking the set of
// locks held at each statement — the same branch-cloning, CFG-free
// scan locksafety has used since PR 1, extended with call-site and
// channel-operation checks. Both rules consume the walk through
// callbacks: lockorder records acquisition-order edges and
// blocked-while-held violations; locksafety keeps its original
// return-while-held check.
//
// A "named mutex object" is a struct field or package-level variable
// of type sync.Mutex/RWMutex (including embedded mutexes reached
// through promoted Lock/RLock methods). The abstraction is per
// *types.Var: two instances of the same struct share one lock node,
// so nesting two different instances of the same field is NOT an
// order-graph self-edge (the engine cannot tell the instances apart);
// re-acquiring the very same receiver expression is reported directly
// as a guaranteed self-deadlock.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockSummary is the interprocedural abstraction of one function.
type lockSummary struct {
	// acquired maps each named mutex the function may acquire —
	// directly or through any statically resolved callee — to the
	// first position that acquisition was observed at.
	acquired map[*types.Var]token.Pos
	// blocks names the first potentially indefinite wait found in the
	// function (or a callee); empty when none.
	blocks string
}

// heldLock is one lock tracked by the walk layer as currently held.
type heldLock struct {
	v        *types.Var // named lock object; nil for locals
	name     string     // display name, falling back to the receiver key
	key      string     // exprKey of the receiver (instance-sensitive)
	pos      token.Pos  // acquisition site
	deferred bool       // an unlock is deferred: held to return, but returns are fine
	write    bool       // Lock rather than RLock
}

// lockEngine owns the summaries and the per-variable display names for
// one module pass.
type lockEngine struct {
	mp    *ModulePass
	nodes []*FuncNode // every graph node, sorted by declaration position
	sums  map[*types.Func]*lockSummary
	names map[*types.Var]string // display name of each named mutex seen
}

func newLockEngine(mp *ModulePass) *lockEngine {
	e := &lockEngine{
		mp:    mp,
		sums:  map[*types.Func]*lockSummary{},
		names: map[*types.Var]string{},
	}
	for _, n := range mp.Graph.Funcs {
		e.nodes = append(e.nodes, n)
	}
	sort.Slice(e.nodes, func(i, j int) bool { return e.nodes[i].Decl.Pos() < e.nodes[j].Decl.Pos() })
	for _, n := range e.nodes {
		e.sums[n.Fn] = &lockSummary{acquired: map[*types.Var]token.Pos{}}
	}
	e.solve()
	return e
}

// solve iterates summary updates to the least fixpoint.
func (e *lockEngine) solve() {
	for changed := true; changed; {
		changed = false
		for _, n := range e.nodes {
			if e.update(n) {
				changed = true
			}
		}
	}
}

// update rescans one function and merges what it finds into the
// stored summary, reporting whether anything grew.
func (e *lockEngine) update(n *FuncNode) bool {
	sum := e.sums[n.Fn]
	changed := false
	addLock := func(v *types.Var, name string, pos token.Pos) {
		if v == nil {
			return
		}
		if _, ok := e.names[v]; !ok {
			e.names[v] = name
		}
		if _, ok := sum.acquired[v]; !ok {
			sum.acquired[v] = pos
			changed = true
		}
	}
	setBlocks := func(what string) {
		if sum.blocks == "" && what != "" {
			sum.blocks = what
			changed = true
		}
	}
	info := n.Pkg.Info
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.GoStmt:
				// Spawned work runs on another goroutine: it neither
				// blocks the spawner nor holds the spawner's locks.
				return false
			case *ast.SendStmt:
				setBlocks("a channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					setBlocks("a channel receive")
				}
			case *ast.RangeStmt:
				if isChanExpr(info, x.X) {
					setBlocks("a range over a channel")
				}
			case *ast.SelectStmt:
				if !selectHasDefault(x) {
					setBlocks("a select with no default")
				}
				// A select with a default never commits to a wait:
				// skip the comm clauses, keep scanning the bodies.
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if _, op, ok := lockCall(info, x); ok {
					if op == "Lock" || op == "RLock" {
						v, name := lockVarOf(info, x)
						addLock(v, name, x.Pos())
					}
					return true
				}
				fn := calleeFunc(info, x)
				if fn == nil {
					return true
				}
				if matchAny(fn, blockingSinks) {
					setBlocks(funcDisplayName(fn))
					return true
				}
				if callee, ok := e.mp.Graph.Funcs[fn]; ok {
					csum := e.sums[callee.Fn]
					for v, pos := range csum.acquired {
						addLock(v, e.names[v], pos)
					}
					if csum.blocks != "" {
						setBlocks(csum.blocks)
					}
				}
			}
			return true
		})
	}
	walk(n.Decl.Body)
	return changed
}

// lockWalker drives the held-set traversal of one module for one
// consuming rule. Callbacks left nil are skipped.
type lockWalker struct {
	eng  *lockEngine
	info *types.Info
	fn   *FuncNode

	// onAcquire fires when a lock is taken while others are held
	// (held is every currently held lock, taken the new one).
	onAcquire func(held []*heldLock, taken *heldLock)
	// onBlocked fires when a potentially indefinite wait happens with
	// locks held: what describes the wait, pos locates it.
	onBlocked func(held []*heldLock, what string, pos token.Pos)
	// onCall fires for every statically resolved call made with locks
	// held (after onBlocked, when both apply).
	onCall func(held []*heldLock, callee *types.Func, pos token.Pos)
	// onReturn fires at each return statement with the locks still
	// held by a defer-less Lock.
	onReturn func(held []*heldLock, pos token.Pos)
}

// walkModule runs the walker over every function (and every function
// literal, as an independent root with an empty held set) in
// declaration order.
func (w *lockWalker) walkModule() {
	for _, n := range w.eng.nodes {
		w.fn = n
		w.info = n.Pkg.Info
		w.walkStmts(n.Decl.Body.List, map[string]*heldLock{})
	}
}

// heldList returns the held locks sorted by receiver key, for
// deterministic callback order.
func heldList(held map[string]*heldLock) []*heldLock {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*heldLock, len(keys))
	for i, k := range keys {
		out[i] = held[k]
	}
	return out
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]*heldLock) {
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := lockCall(w.info, s.X); ok {
				call := ast.Unparen(s.X).(*ast.CallExpr)
				switch op {
				case "Lock", "RLock":
					hl := &heldLock{key: recv, pos: s.Pos(), write: op == "Lock"}
					hl.v, hl.name = lockVarOf(w.info, call)
					if hl.name == "" {
						hl.name = recv
					}
					if i+1 < len(stmts) && deferredUnlock(w.info, stmts[i+1], recv) {
						hl.deferred = true
					}
					if w.onAcquire != nil && len(held) > 0 {
						w.onAcquire(heldList(held), hl)
					}
					held[recv] = hl
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
			w.scanExpr(s.X, held)
		case *ast.DeferStmt:
			if recv, op, ok := lockCall(w.info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				if hl := held[recv]; hl != nil {
					hl.deferred = true
				}
				continue
			}
			// Other deferred calls run at return, under an unknowable
			// held set; only their arguments evaluate here.
			for _, a := range s.Call.Args {
				w.scanExpr(a, held)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				w.scanExpr(r, held)
			}
			if w.onReturn != nil {
				var leak []*heldLock
				for _, hl := range heldList(held) {
					if !hl.deferred {
						leak = append(leak, hl)
					}
				}
				if len(leak) > 0 {
					w.onReturn(leak, s.Pos())
				}
			}
		case *ast.IfStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, held)
			}
			w.scanExpr(s.Cond, held)
			w.walkStmts(s.Body.List, cloneHeldLocks(held))
			switch els := s.Else.(type) {
			case *ast.BlockStmt:
				w.walkStmts(els.List, cloneHeldLocks(held))
			case *ast.IfStmt:
				w.walkStmts([]ast.Stmt{els}, cloneHeldLocks(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, held)
			}
			w.scanExpr(s.Cond, held)
			w.walkStmts(s.Body.List, cloneHeldLocks(held))
		case *ast.RangeStmt:
			if w.onBlocked != nil && len(held) > 0 && isChanExpr(w.info, s.X) {
				w.onBlocked(heldList(held), "a range over a channel", s.Pos())
			}
			w.scanExpr(s.X, held)
			w.walkStmts(s.Body.List, cloneHeldLocks(held))
		case *ast.BlockStmt:
			w.walkStmts(s.List, cloneHeldLocks(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, held)
			}
			w.scanExpr(s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkStmts(cc.Body, cloneHeldLocks(held))
				}
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkStmts(cc.Body, cloneHeldLocks(held))
				}
			}
		case *ast.SelectStmt:
			if w.onBlocked != nil && len(held) > 0 && !selectHasDefault(s) {
				w.onBlocked(heldList(held), "a select with no default", s.Pos())
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.walkStmts(cc.Body, cloneHeldLocks(held))
				}
			}
		case *ast.SendStmt:
			if w.onBlocked != nil && len(held) > 0 {
				w.onBlocked(heldList(held), "a channel send", s.Pos())
			}
			w.scanExpr(s.Chan, held)
			w.scanExpr(s.Value, held)
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				w.scanExpr(e, held)
			}
			for _, e := range s.Lhs {
				w.scanExpr(e, held)
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							w.scanExpr(v, held)
						}
					}
				}
			}
		case *ast.GoStmt:
			// The spawned body runs with its own (empty) held set; the
			// arguments evaluate on this goroutine.
			for _, a := range s.Call.Args {
				w.scanExpr(a, held)
			}
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				w.walkStmts(lit.Body.List, map[string]*heldLock{})
			}
		case *ast.LabeledStmt:
			w.walkStmts([]ast.Stmt{s.Stmt}, held)
		case *ast.IncDecStmt:
			w.scanExpr(s.X, held)
		}
	}
}

// scanExpr inspects one expression for channel receives and calls made
// under the current held set. Function literals are walked as fresh
// roots: their bodies run under their own lock discipline.
func (w *lockWalker) scanExpr(e ast.Expr, held map[string]*heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			w.walkStmts(x.Body.List, map[string]*heldLock{})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && w.onBlocked != nil && len(held) > 0 {
				w.onBlocked(heldList(held), "a channel receive", x.Pos())
			}
		case *ast.CallExpr:
			if _, _, ok := lockCall(w.info, x); ok {
				return true
			}
			fn := calleeFunc(w.info, x)
			if fn == nil || len(held) == 0 {
				return true
			}
			if w.onBlocked != nil && matchAny(fn, blockingSinks) {
				w.onBlocked(heldList(held), "blocking call "+funcDisplayName(fn), x.Pos())
			}
			if w.onCall != nil {
				w.onCall(heldList(held), fn, x.Pos())
			}
		}
		return true
	})
}

func cloneHeldLocks(held map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockVarOf resolves the named mutex object a lock call operates on:
// the struct field or package-level variable of type
// sync.Mutex/RWMutex, including embedded mutexes reached through
// promoted methods. Local-variable locks and unresolvable receivers
// return (nil, "").
func lockVarOf(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	if s, ok := info.Selections[sel]; ok && len(s.Index()) > 1 {
		// Promoted method: the first len-1 index entries walk embedded
		// fields; the last field reached is the mutex itself.
		t := s.Recv()
		var fld *types.Var
		for _, idx := range s.Index()[:len(s.Index())-1] {
			st, ok := derefStruct(t)
			if !ok || idx >= st.NumFields() {
				return nil, ""
			}
			fld = st.Field(idx)
			t = fld.Type()
		}
		if fld == nil {
			return nil, ""
		}
		return fld, namedTypeName(s.Recv()) + "." + fld.Name()
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		v, ok := info.Uses[x.Sel].(*types.Var)
		if !ok {
			return nil, ""
		}
		if v.IsField() {
			return v, namedTypeNameOf(info, x.X) + "." + v.Name()
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return nil, ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	}
	return nil, ""
}

// derefStruct unwraps one pointer level and returns the underlying
// struct type, if any.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// namedTypeName names the (possibly pointer-wrapped) named type, or "?".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "?"
}

func namedTypeNameOf(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return namedTypeName(tv.Type)
	}
	return "?"
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockCall matches a call expression of the form recv.Lock / RLock /
// Unlock / RUnlock where the method belongs to sync.Mutex or
// sync.RWMutex (including promoted methods of embedded mutexes), and
// returns a stable key for the receiver expression.
func lockCall(info *types.Info, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprKey(sel.X), fn.Name(), true
	}
	return "", "", false
}

// deferredUnlock reports whether stmt is `defer recv.Unlock()` (or
// RUnlock) for the same receiver key.
func deferredUnlock(info *types.Info, stmt ast.Stmt, wantRecv string) bool {
	d, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	recv, op, ok := lockCall(info, d.Call)
	return ok && recv == wantRecv && (op == "Unlock" || op == "RUnlock")
}
