package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// ignoreDirective is one parsed //discvet:ignore comment.
type ignoreDirective struct {
	rule   string // rule being suppressed
	reason string // optional justification text
	pos    token.Position
}

const ignorePrefix = "//discvet:ignore"

// parseIgnores extracts every //discvet:ignore directive in the
// package's files.
func parseIgnores(pkg *Package) []ignoreDirective {
	var dirs []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				d := ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.rule = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// applySuppressions drops diagnostics covered by an ignore directive
// for their rule on the same line or the line directly above, and
// reports malformed directives: a missing rule name, or a rule name
// that matches no registered analyzer. diags must all belong to pkg.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	dirs := parseIgnores(pkg)
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ig := range dirs {
			if ig.rule == d.Rule && ig.pos.Filename == d.Pos.Filename &&
				(ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, ig := range dirs {
		switch {
		case ig.rule == "":
			out = append(out, Diagnostic{
				Rule:    "discvet",
				Pos:     ig.pos,
				Message: "ignore directive is missing a rule name",
			})
		case ByName(ig.rule) == nil:
			out = append(out, Diagnostic{
				Rule:    "discvet",
				Pos:     ig.pos,
				Message: "ignore directive names unknown rule " + strconv.Quote(ig.rule),
			})
		}
	}
	return out
}
