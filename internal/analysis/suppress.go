package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// ignoreDirective is one parsed //discvet:ignore comment.
type ignoreDirective struct {
	rule   string // rule being suppressed
	reason string // optional justification text
	pos    token.Position
}

const ignorePrefix = "//discvet:ignore"

// pseudoRules are diagnostic sources that are not analyzers but are
// legal in ignore directives' rule position checks.
var pseudoRules = map[string]bool{"discvet": true, "uselessignore": true}

// parseIgnores extracts every //discvet:ignore directive in the
// package's files.
func parseIgnores(pkg *Package) []ignoreDirective {
	var dirs []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				d := ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.rule = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// applySuppressions drops diagnostics covered by an ignore directive
// for their rule on the same line or the line directly above, and
// reports defective directives:
//
//   - a missing rule name or an unknown rule name -> rule "discvet"
//   - a directive whose rule was among the selected analyzers yet
//     suppressed nothing -> rule "uselessignore", so stale
//     suppressions surface instead of silently masking future code.
//
// Directives are collected across all packages of the run, so
// module-level diagnostics are suppressible wherever they land.
func applySuppressions(pkgs []*Package, selected []*Analyzer, diags []Diagnostic) []Diagnostic {
	var dirs []ignoreDirective
	for _, pkg := range pkgs {
		dirs = append(dirs, parseIgnores(pkg)...)
	}
	selectedNames := map[string]bool{}
	for _, a := range selected {
		selectedNames[a.Name] = true
	}

	used := make([]bool, len(dirs))
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i, ig := range dirs {
			if ig.rule == d.Rule && ig.pos.Filename == d.Pos.Filename &&
				(ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1) {
				suppressed = true
				used[i] = true
				// Keep scanning: a second directive for the same finding
				// would otherwise be reported useless nondeterministically.
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for i, ig := range dirs {
		switch {
		case ig.rule == "":
			out = append(out, Diagnostic{
				Rule:    "discvet",
				Pos:     ig.pos,
				Message: "ignore directive is missing a rule name",
			})
		case ByName(ig.rule) == nil && !pseudoRules[ig.rule]:
			out = append(out, Diagnostic{
				Rule:    "discvet",
				Pos:     ig.pos,
				Message: "ignore directive names unknown rule " + strconv.Quote(ig.rule),
			})
		case !used[i] && selectedNames[ig.rule]:
			out = append(out, Diagnostic{
				Rule:    "uselessignore",
				Pos:     ig.pos,
				Message: "ignore directive suppresses nothing: rule " + strconv.Quote(ig.rule) + " reports no finding on this line; delete the stale suppression",
			})
		}
	}
	return out
}
