package analysis

import (
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestLockOrderFixture(t *testing.T) {
	pkg := loadFixture(t, "lockorder", "discsec/internal/lofixture")
	checkFixture(t, pkg, LockOrder)
}

// TestLockOrderCycleTrace pins the cycle diagnostic's rendering: the
// loop through the order graph and the function that contributed each
// edge, so a deadlock report is actionable without re-running anything.
func TestLockOrderCycleTrace(t *testing.T) {
	pkg := loadFixture(t, "lockorder", "discsec/internal/lofixture")
	var cycle []Diagnostic
	for _, d := range Run([]*Package{pkg}, []*Analyzer{LockOrder}) {
		if strings.Contains(d.Message, "lock-order cycle") {
			cycle = append(cycle, d)
		}
	}
	if len(cycle) != 1 {
		t.Fatalf("got %d cycle diagnostics, want 1: %v", len(cycle), cycle)
	}
	msg := cycle[0].Message
	if !strings.Contains(msg, "P.mu -> Q.mu -> P.mu") {
		t.Errorf("cycle trace does not show the loop: %q", msg)
	}
	if !strings.Contains(msg, "in lofixture.P.LockBoth") || !strings.Contains(msg, "in lofixture.Q.Reverse") {
		t.Errorf("cycle sites do not name both contributing functions: %q", msg)
	}
}

func TestLockOrderCleanTwin(t *testing.T) {
	pkg := loadFixture(t, "lockorder_clean", "discsec/internal/locfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{LockOrder}); len(diags) != 0 {
		t.Errorf("consistent-order twin: got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

func TestGoroutineLeakFixture(t *testing.T) {
	pkg := loadFixture(t, "goroutineleak", "discsec/internal/glfixture")
	checkFixture(t, pkg, GoroutineLeak)
}

func TestGoroutineLeakCleanTwin(t *testing.T) {
	pkg := loadFixture(t, "goroutineleak_clean", "discsec/internal/glcfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{GoroutineLeak}); len(diags) != 0 {
		t.Errorf("signal-tied twin: got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

func TestHotPathAllocFixture(t *testing.T) {
	pkg := loadFixture(t, "hotpathalloc", "discsec/internal/hpfixture")
	checkFixture(t, pkg, HotPathAlloc)
}

// TestHotPathAllocNamesRoot pins that every finding names the hot root
// that pulled the function into the hot set — for transitively hot
// helpers that is the annotated caller, not the helper itself.
func TestHotPathAllocNamesRoot(t *testing.T) {
	pkg := loadFixture(t, "hotpathalloc", "discsec/internal/hpfixture")
	diags := Run([]*Package{pkg}, []*Analyzer{HotPathAlloc})
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings")
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.Message, "hot path (hpfixture.Sum): ") {
			t.Errorf("finding does not name its root: %v", d)
		}
	}
}

func TestHotPathAllocUnannotatedTwin(t *testing.T) {
	pkg := loadFixture(t, "hotpathalloc_plain", "discsec/internal/hppfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{HotPathAlloc}); len(diags) != 0 {
		t.Errorf("unannotated twin: got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestUselessIgnoreV3Rules: stale //discvet:ignore directives naming
// the v3 rules are themselves reported, one per rule.
func TestUselessIgnoreV3Rules(t *testing.T) {
	pkg := loadFixture(t, "uselessignore3", "discsec/internal/uifixture3")
	diags := Run([]*Package{pkg}, []*Analyzer{LockOrder, GoroutineLeak, HotPathAlloc})

	named := map[string]int{}
	for _, d := range diags {
		if d.Rule != "uselessignore" {
			t.Errorf("unexpected non-uselessignore diagnostic: %v", d)
			continue
		}
		for _, rule := range []string{"lockorder", "goroutineleak", "hotpathalloc"} {
			if strings.Contains(d.Message, `"`+rule+`"`) {
				named[rule]++
			}
		}
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3 stale-suppression reports: %v", len(diags), diags)
	}
	for _, rule := range []string{"lockorder", "goroutineleak", "hotpathalloc"} {
		if named[rule] != 1 {
			t.Errorf("rule %s: got %d stale-suppression reports naming it, want 1", rule, named[rule])
		}
	}
}

// TestBaselineRoundTripV3Rules: findings from all three v3 rules
// survive a baseline save/load cycle and are fully absorbed by it,
// while a new finding still surfaces.
func TestBaselineRoundTripV3Rules(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "lockorder", "discsec/internal/lofixture"),
		loadFixture(t, "goroutineleak", "discsec/internal/glfixture"),
		loadFixture(t, "hotpathalloc", "discsec/internal/hpfixture"),
	}
	diags := Run(pkgs, []*Analyzer{LockOrder, GoroutineLeak, HotPathAlloc})
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	for _, rule := range []string{"lockorder", "goroutineleak", "hotpathalloc"} {
		if byRule[rule] == 0 {
			t.Fatalf("rule %s produced no findings to baseline (got %v)", rule, byRule)
		}
	}

	b := NewBaseline(diags, "")
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if !reflect.DeepEqual(loaded, b) {
		t.Errorf("baseline did not round-trip:\nsaved  %+v\nloaded %+v", b, loaded)
	}
	if left := loaded.Filter(diags, ""); len(left) != 0 {
		t.Errorf("baseline left %d findings, want 0: %v", len(left), left)
	}
	extra := Diagnostic{
		Rule:    "lockorder",
		Pos:     token.Position{Filename: "other.go", Line: 3, Column: 1},
		Message: "a brand-new deadlock",
	}
	if left := loaded.Filter(append(diags, extra), ""); len(left) != 1 || left[0].Message != extra.Message {
		t.Errorf("new finding did not survive the baseline: %v", left)
	}
}

// TestProductionHotPathAnnotated pins the seed annotations on the real
// module: the warm-open path, the c14n escape loops, and the obs
// recorder hot path are hotpath roots, and the audited escapes are
// coldpath. If an annotation comment drifts out of directive position
// (and so silently stops being enforced), this fails.
func TestProductionHotPathAnnotated(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./internal/library", "./internal/c14n", "./internal/obs", "./internal/cowmap")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ann := collectPathAnnotations(&ModulePass{Pkgs: pkgs})
	byName := map[string]pathAnnotation{}
	for fn, a := range ann {
		byName[funcDisplayName(fn)] = a
	}
	wantHot := []string{
		"library.Library.lookup", "library.Library.entryValid",
		"library.Library.signerEpochOf", "library.Library.shardFor", "library.shard.get",
		"c14n.writeText", "c14n.writeAttrValue",
		"obs.Recorder.Add", "obs.Recorder.Inc", "obs.Recorder.Observe",
		"obs.Recorder.Start", "obs.Span.End",
		"cowmap.Map.Get", "cowmap.Map.GetOrCreate",
	}
	for _, name := range wantHot {
		if byName[name] != annHot {
			t.Errorf("%s is not annotated //discvet:hotpath (got %d)", name, byName[name])
		}
	}
	wantCold := []string{"library.Library.fill", "obs.Recorder.Audit", "cowmap.Map.getOrCreateSlow"}
	for _, name := range wantCold {
		if byName[name] != annCold {
			t.Errorf("%s is not annotated //discvet:coldpath (got %d)", name, byName[name])
		}
	}
}

// TestV3RulesRegistered: the three v3 rules are module-level analyzers
// reachable through the registry (and therefore through -rules, SARIF
// rule tables, and suppression checking).
func TestV3RulesRegistered(t *testing.T) {
	for _, name := range []string{"lockorder", "goroutineleak", "hotpathalloc"} {
		a := ByName(name)
		if a == nil {
			t.Fatalf("rule %s not registered", name)
		}
		if a.RunModule == nil || a.Run != nil {
			t.Errorf("rule %s must be a module-level analyzer", name)
		}
		if a.Doc == "" {
			t.Errorf("rule %s has no Doc", name)
		}
	}
}
