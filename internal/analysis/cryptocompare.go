package analysis

import (
	"go/ast"
	"go/token"
)

// cryptoComparePackages are the internal/<name> packages in which
// every digest/MAC/signature comparison must be constant-time. These
// are the packages on the Verifier/Decryptor path: an early-exit
// comparison there leaks how many leading bytes of a forged digest
// were right, which is exactly the oracle a wrapping or splicing
// attacker wants.
var cryptoComparePackages = []string{"xmldsig", "xmlenc", "keymgmt", "omadcf", "disc", "core"}

// cryptoCompareVocab marks identifier words that name secret-derived
// values. An identifier matches if any camelCase/underscore word
// equals an entry ("clipDigest", "want_sum", "sigBytes").
var cryptoCompareVocab = map[string]bool{
	"digest": true, "mac": true, "hmac": true, "sig": true,
	"signature": true, "secret": true, "sum": true, "checksum": true,
	"hash": true, "token": true,
}

// CryptoCompare reports variable-time comparisons (bytes.Equal, ==,
// !=, reflect.DeepEqual) of digest/MAC/signature/secret-named values
// in the crypto packages. Use crypto/subtle.ConstantTimeCompare or
// hmac.Equal instead.
var CryptoCompare = &Analyzer{
	Name: "cryptocompare",
	Doc:  "digest/MAC/signature comparisons must use crypto/subtle, not bytes.Equal or ==",
	Run:  runCryptoCompare,
}

func runCryptoCompare(pass *Pass) {
	if !pathHasInternalPkg(pass.Path, cryptoComparePackages...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, x)
				var name string
				switch {
				case isPkgFunc(fn, "bytes", "Equal"):
					name = "bytes.Equal"
				case isPkgFunc(fn, "reflect", "DeepEqual"):
					name = "reflect.DeepEqual"
				default:
					return true
				}
				for _, arg := range x.Args {
					if exprNameMatches(arg, cryptoCompareVocab) {
						pass.Reportf(x.Pos(),
							"%s on secret-derived value is not constant-time; use crypto/subtle.ConstantTimeCompare (or hmac.Equal)",
							name)
						break
					}
				}
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if isNilLiteral(x.X) || isNilLiteral(x.Y) {
					return true
				}
				// Comparing against a compile-time constant (an
				// algorithm URI, an empty-string presence check, a
				// format tag) is not the secret-vs-attacker-input
				// pattern constant-time comparison defends.
				if pass.Info.Types[x.X].Value != nil || pass.Info.Types[x.Y].Value != nil {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if !exprNameMatches(side, cryptoCompareVocab) {
						continue
					}
					if !isBytesLike(pass.Info.Types[side].Type) {
						continue
					}
					pass.Reportf(x.Pos(),
						"%s on secret-derived value is not constant-time; use crypto/subtle.ConstantTimeCompare (or hmac.Equal)",
						x.Op)
					break
				}
			}
			return true
		})
	}
}

func isNilLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
