package analysis

import (
	"go/ast"
	"go/types"
)

// httpClientPackages are the internal/<name> packages that talk to
// remote peers in the paper's §5.1/§7 usage model. Every HTTP client
// there must carry a deadline: http.DefaultClient (and the
// package-level helpers that use it) has no Timeout, so one
// unreachable content server or trust service would hang the player
// forever instead of entering the resilience layer's retry/degrade
// path.
var httpClientPackages = []string{"server", "keymgmt", "player", "health", "cluster"}

// httpDefaultClientFuncs are the net/http package-level helpers that
// route through DefaultClient.
var httpDefaultClientFuncs = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

// HTTPClient forbids deadline-less HTTP clients in the networked
// packages: any use of http.DefaultClient, any call to the net/http
// package-level request helpers (which use it), and any http.Client
// composite literal that does not set Timeout.
var HTTPClient = &Analyzer{
	Name: "httpclient",
	Doc:  "networked packages must use http.Clients with a Timeout, never http.DefaultClient",
	Run:  runHTTPClient,
}

func runHTTPClient(pass *Pass) {
	if !pathHasInternalPkg(pass.Path, httpClientPackages...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if obj, ok := pass.Info.Uses[x.Sel].(*types.Var); ok &&
					obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "DefaultClient" {
					pass.Reportf(x.Pos(),
						"http.DefaultClient has no Timeout; use a client with a deadline so dead peers hit the retry path instead of hanging")
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, x)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && httpDefaultClientFuncs[fn.Name()] &&
					fn.Type().(*types.Signature).Recv() == nil { // methods like (*Client).Get are fine
					pass.Reportf(x.Pos(),
						"http.%s uses http.DefaultClient (no Timeout); build a request and send it through a client with a deadline", fn.Name())
				}
			case *ast.CompositeLit:
				if isHTTPClientLit(pass.Info, x) && !literalSetsField(x, "Timeout") {
					pass.Reportf(x.Pos(),
						"http.Client literal without a Timeout; a zero-Timeout client hangs forever on a dead peer")
				}
			}
			return true
		})
	}
}

// isHTTPClientLit reports whether the composite literal constructs a
// net/http.Client value.
func isHTTPClientLit(info *types.Info, lit *ast.CompositeLit) bool {
	t := info.Types[lit].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Client"
}

// literalSetsField reports whether a keyed composite literal sets the
// named field. Positional literals count as setting everything (all
// fields must be present for them to compile).
func literalSetsField(lit *ast.CompositeLit, field string) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return true // positional literal: every field is spelled out
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return true
		}
	}
	return false
}
