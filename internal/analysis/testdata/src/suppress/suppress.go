// Fixture for the suppression mechanism. Loaded as a package under
// internal/disc so cryptocompare applies; every violation below is
// suppressed, and the directives with a bad or missing rule name must
// themselves be reported (asserted directly in driver_test.go).
package fixture

import "bytes"

func checkAbove(digest, want []byte) bool {
	//discvet:ignore cryptocompare fixture: public demo value, constant-time not required
	return bytes.Equal(digest, want)
}

func checkSameLine(digest, want []byte) bool {
	return bytes.Equal(digest, want) //discvet:ignore cryptocompare fixture: same-line justification
}

//discvet:ignore nosuchrule this rule does not exist and must be reported
func unknownRule() {}

//discvet:ignore
func missingRule() {}
