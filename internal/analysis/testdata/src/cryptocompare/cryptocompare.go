// Fixture for the cryptocompare analyzer. Loaded by driver_test.go as
// a package under internal/disc (flagged) and under internal/player
// (clean: the rule only applies to the crypto packages).
package fixture

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"reflect"
)

const trustedAlg = "urn:discsec:alg:hmac-sha256"

func verifyDigest(body, digest []byte) bool {
	sum := sha256.Sum256(body)
	return bytes.Equal(sum[:], digest) // want cryptocompare
}

func verifyMACDeep(mac, want []byte) bool {
	return reflect.DeepEqual(mac, want) // want cryptocompare
}

func compareTokens(token, want string) bool {
	return token == want // want cryptocompare
}

func compareSums(sum, want [sha256.Size]byte) bool {
	return sum != want // want cryptocompare
}

func okSubtle(digest, want []byte) bool {
	return subtle.ConstantTimeCompare(digest, want) == 1
}

func okHMAC(mac, want []byte) bool {
	return hmac.Equal(mac, want)
}

func okPublic(alg string, sig []byte) bool {
	// Constant and nil comparisons are public checks, not oracles.
	return alg == trustedAlg && sig != nil
}

func okUnrelated(name string, count int) bool {
	return name == "index.xml" || count == 0
}
