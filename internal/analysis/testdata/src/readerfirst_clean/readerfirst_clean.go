// Negative twin of the readerfirst fixture: the same shapes with the
// buffer and the re-stream decoupled — the rule must stay silent.
package fixture

import (
	"bytes"
	"context"
	"io"

	"discsec/internal/core"
	"discsec/internal/library"
)

// The ReadAll result feeds the []byte API; a different, resident
// buffer feeds the reader API.
func split(ctx context.Context, op *core.Opener, lib *library.Library, r io.Reader, resident []byte) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if _, err := op.Open(ctx, buf); err != nil {
		return err
	}
	_, _, err = lib.OpenReader(ctx, bytes.NewReader(resident))
	return err
}

// Wrapping an io.ReadAll buffer for a non-verification consumer is
// fine; the rule is scoped to the streaming entries.
func otherConsumer(r io.Reader, w io.Writer) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	_, err = io.Copy(w, bytes.NewReader(buf))
	return err
}
