// Package lofixture exercises the lockorder analyzer: an AB-BA
// acquisition cycle built from interprocedural lockset summaries, a
// double acquisition of one mutex, and indefinite waits (channel
// send, network round trip, blocking callee) while a mutex is held.
package lofixture

import (
	"net/http"
	"sync"
)

// P and Q lock each other's mutexes in opposite orders across four
// functions; neither function alone acquires out of order.
type P struct {
	mu sync.Mutex
	q  *Q
}

type Q struct {
	mu sync.Mutex
	p  *P
}

// LockBoth acquires P.mu, then Q.mu through withLock's summary.
func (p *P) LockBoth() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.q.withLock() // want lockorder
}

func (q *Q) withLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
}

// Reverse acquires Q.mu, then P.mu: the other half of the cycle.
func (q *Q) Reverse() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.p.direct()
}

func (p *P) direct() {
	p.mu.Lock()
	defer p.mu.Unlock()
}

// S holds one mutex across the waits below.
type S struct {
	mu  sync.Mutex
	ch  chan int
	cli *http.Client
}

// SendLocked blocks on an unbuffered send with S.mu held.
func (s *S) SendLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want lockorder
}

// FetchLocked performs a network round trip with S.mu held.
func (s *S) FetchLocked(req *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cli.Do(req) // want lockorder
}

// CallBlockerLocked reaches a channel receive through a callee whose
// summary records that it blocks.
func (s *S) CallBlockerLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	drain(s.ch) // want lockorder
}

func drain(ch chan int) {
	<-ch
}

// Relock re-acquires the mutex it already holds: self-deadlock.
func (s *S) Relock() {
	s.mu.Lock()
	s.mu.Lock() // want lockorder
	s.mu.Unlock()
	s.mu.Unlock()
}

// SendUnlocked releases the mutex before the send: clean.
func (s *S) SendUnlocked(v int) {
	s.mu.Lock()
	ch := s.ch
	s.mu.Unlock()
	ch <- v
}
