// Fixture for the locksafety analyzer: lock-by-value copies and
// returns while a defer-less Lock is held.
package fixture

import "sync"

type Store struct {
	mu    sync.Mutex
	items map[string][]byte
}

func (s Store) Len() int { // want locksafety
	return len(s.items)
}

func snapshot(s Store) int { // want locksafety
	return len(s.items)
}

func byPointer(s *Store) int {
	return len(s.items)
}

func (s *Store) Get(k string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.items[k]
	return v, ok
}

func (s *Store) GetLeaky(k string) ([]byte, bool) {
	s.mu.Lock()
	v, ok := s.items[k]
	if !ok {
		return nil, false // want locksafety
	}
	s.mu.Unlock()
	return v, true
}

func (s *Store) Put(k string, v []byte) {
	s.mu.Lock()
	s.items[k] = v
	s.mu.Unlock()
}

type Registry struct {
	sync.RWMutex
	n int
}

func (r *Registry) Count() int {
	r.RLock()
	if r.n < 0 {
		return 0 // want locksafety
	}
	r.RUnlock()
	return r.n
}

func (r *Registry) CountSafe() int {
	r.RLock()
	defer r.RUnlock()
	return r.n
}
