// Fixture for stale-suppression detection: a directive that suppresses
// a real finding is fine; one whose rule fires nothing on its line is
// reported as uselessignore. Assertions live in the test (the directive
// comment occupies the line, so `// want` markers cannot).
package fixture

import (
	"errors"
	"fmt"
)

func wraps(err error) error {
	return fmt.Errorf("fixture context: %v", err) //discvet:ignore errwrap fixture-justified suppression
}

func stale() error {
	//discvet:ignore errwrap nothing on the next line triggers errwrap
	return errors.New("fixture: clean line")
}
