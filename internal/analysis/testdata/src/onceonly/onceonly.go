// Fixture for the onceonly analyzer: one-shot readers must not be
// consumed twice or re-wrapped after a partial read.
package fixture

import (
	"bufio"
	"io"
	"net/http"

	"discsec/internal/xmldom"
)

// Consumed twice: the second ReadAll sees only EOF.
func readTwice(r io.Reader) ([]byte, []byte) {
	first, _ := io.ReadAll(r)
	second, _ := io.ReadAll(r) // want onceonly
	return first, second
}

// Consumed twice through a module verification entry.
func parseTwice(r io.Reader) error {
	if _, err := xmldom.Parse(r); err != nil {
		return err
	}
	_, err := xmldom.Parse(r) // want onceonly
	return err
}

// Re-wrapped after a partial read: the bufio.Reader presents a
// beheaded stream as a whole document.
func rewrapAfterSniff(r io.Reader) (*bufio.Reader, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return bufio.NewReader(r), nil // want onceonly
}

// Re-wrapped after being fully consumed.
func wrapAfterConsume(r io.Reader) io.Reader {
	_, _ = io.ReadAll(r)
	return io.LimitReader(r, 10) // want onceonly
}

// counting mirrors the library's countReader: a struct wrapper carries
// the wrapped reader's one-shot identity.
type counting struct {
	r io.Reader
	n int64
}

func (c *counting) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.n += int64(m)
	return m, err
}

// Consuming through the struct alias and then the original is still a
// double consume.
func aliasThroughStruct(r io.Reader) ([]byte, []byte) {
	cr := &counting{r: r}
	first, _ := io.ReadAll(cr)
	second, _ := io.ReadAll(r) // want onceonly
	return first, second
}

// A request body is one-shot even without passing through a parameter.
func handleTwice(w http.ResponseWriter, req *http.Request) {
	raw, _ := io.ReadAll(req.Body)
	_, _ = io.ReadAll(req.Body) // want onceonly
	_ = raw
}

// drain consumes its parameter; the interprocedural summary carries
// that to every call site.
func drain(r io.Reader) {
	_, _ = io.Copy(io.Discard, r)
}

func drainThenParse(r io.Reader) (*xmldom.Document, error) {
	drain(r)
	return xmldom.Parse(r) // want onceonly
}

// Clean twin: wrap once, consume once — the server /verify shape.
func wrapOnce(w http.ResponseWriter, req *http.Request) ([]byte, error) {
	body := http.MaxBytesReader(w, req.Body, 1<<20)
	return io.ReadAll(body)
}

// Clean twin: a partial read followed by a full consume resumes the
// same stream; nothing is re-framed.
func sniffThenRead(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

// Clean twin: branch-exclusive consumption — only one consume per path.
func eitherOr(dst io.Writer, r io.Reader, spool bool) error {
	if spool {
		_, err := io.Copy(dst, r)
		return err
	}
	_, err := io.ReadAll(r)
	return err
}

// Clean twin: a manual read loop is a sequence of partial reads of the
// same stream, not a re-consume.
func manualLoop(r io.Reader) (n int) {
	buf := make([]byte, 512)
	for {
		m, err := r.Read(buf)
		n += m
		if err != nil {
			return n
		}
	}
}
