// Fixture for the poolescape analyzer: values from sync.Pool.Get must
// not be used, aliased, or returned after their Put, and never Put
// twice on any path.
package fixture

import "sync"

type item struct {
	n   int
	buf []byte
}

var pool = sync.Pool{New: func() any { return new(item) }}

// longLived models a longer-lived location a released value must not
// be aliased into.
var longLived struct {
	p *item
}

func use(p *item) {}

// putItem releases its parameter; the flow summaries make every call
// site a release without the rule knowing this helper by name.
func putItem(p *item) {
	p.n = 0
	pool.Put(p)
}

// getItem returns a pool-owned value (returnsPooled in the summary).
func getItem() *item {
	return pool.Get().(*item)
}

// Use after an explicit Put.
func useAfterPut() {
	p := pool.Get().(*item)
	use(p)
	pool.Put(p)
	p.n++ // want poolescape
}

// Put twice on the same straight-line path.
func doublePut() {
	p := pool.Get().(*item)
	use(p)
	pool.Put(p)
	pool.Put(p) // want poolescape
}

// Returned after its Put: the caller receives an object the pool may
// already have handed elsewhere.
func returnAfterPut() *item {
	p := pool.Get().(*item)
	use(p)
	pool.Put(p)
	return p // want poolescape
}

// An alias does not launder the release: Put through one name kills
// every name bound to the same register.
func aliasedUse() {
	p := pool.Get().(*item)
	q := p
	pool.Put(p)
	use(q) // want poolescape
}

// Aliased into a longer-lived location after the Put.
func escapeAfterPut() {
	p := pool.Get().(*item)
	pool.Put(p)
	longLived.p = p // want poolescape
}

// The release happens inside a module helper; the interprocedural
// summary carries it back to this call site.
func helperRelease() {
	p := getItem()
	use(p)
	putItem(p)
	use(p) // want poolescape
}

// A body Put plus a deferred Put is a double release at exit.
func deferDoublePut() {
	p := pool.Get().(*item)
	defer pool.Put(p) // want poolescape
	use(p)
	pool.Put(p)
}

// Released on one branch only: any path reaching the use may hold a
// recycled object.
func mayUseAfterPut(cond bool) {
	p := pool.Get().(*item)
	if cond {
		pool.Put(p)
	}
	use(p) // want poolescape
}

// Clean twin: get, use, single Put at the end.
func straightLine() {
	p := pool.Get().(*item)
	use(p)
	pool.Put(p)
}

// Clean twin: the idiomatic deferred Put runs after every use.
func deferredPut() {
	p := pool.Get().(*item)
	defer pool.Put(p)
	use(p)
	p.n++
}

// Clean twin: the releasing branch returns, so no released value
// reaches the use (this is what branch sensitivity buys).
func putAndBailOut(cond bool) {
	p := pool.Get().(*item)
	if cond {
		pool.Put(p)
		return
	}
	use(p)
	pool.Put(p)
}

// Clean twin: re-acquiring after the Put starts a fresh lifetime.
func reacquire() {
	p := pool.Get().(*item)
	pool.Put(p)
	p = pool.Get().(*item)
	use(p)
	pool.Put(p)
}
