// Negative-test twin of the taintflow fixture's `sanitized` and
// `verifiedDoc` functions with the sanitizer calls deleted: the same
// code minus verification must flip from clean to flagged.
package fixture

import (
	"discsec/internal/disc"
	"discsec/internal/markup"
	"discsec/internal/xmldom"
)

func sanitized(im *disc.Image, in *markup.Interp) error {
	raw, err := im.Get("APP/main.xml")
	if err != nil {
		return err
	}
	return in.RunSource(string(raw)) // want taintflow
}

func verifiedDoc(im *disc.Image) error {
	raw, err := im.Get("APP/main.xml")
	if err != nil {
		return err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	_, err = markup.ParseLayout(doc.Root()) // want taintflow
	return err
}
