// Fixture for stale suppressions naming the discvet v4 value-flow
// rules: every directive below sits on code its rule does not flag, so
// each must be reported as uselessignore. Assertions live in the test
// (the directive comment occupies the line, so `// want` markers
// cannot).
package fixture

import (
	"context"
	"io"
	"sync"

	"discsec/internal/core"
)

type scratch struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// Fill touches its pooled buffer strictly before Put: nothing for
// poolescape to report.
func Fill(data []byte) int {
	p := pool.Get().(*scratch)
	p.b = append(p.b[:0], data...)
	n := len(p.b)
	//discvet:ignore poolescape fixture: stale, the Put below is the last touch
	pool.Put(p)
	return n
}

// Open guards every use behind the early err return: nothing for
// errdominate to report.
func Open(ctx context.Context, op *core.Opener, raw []byte) int {
	res, err := op.Open(ctx, raw)
	if err != nil {
		return 0
	}
	//discvet:ignore errdominate fixture: stale, the early return guards this use
	return len(res.Signatures)
}

// Slurp consumes its reader exactly once: nothing for onceonly to
// report.
func Slurp(r io.Reader) ([]byte, error) {
	//discvet:ignore onceonly fixture: stale, single consume of a fresh reader
	return io.ReadAll(r)
}
