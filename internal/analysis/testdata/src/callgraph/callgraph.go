// Fixture for the call-graph builder: recursion, interface method
// dispatch, and function values.
package fixture

type Doer interface{ Do() int }

type A struct{}

func (A) Do() int { return 1 }

type B struct{ n int }

func (b *B) Do() int { return b.n }

// Rec is directly recursive.
func Rec(n int) int {
	if n <= 0 {
		return 0
	}
	return Rec(n - 1)
}

// CallIface dispatches through the interface: edges to every
// implementing named type's method.
func CallIface(d Doer) int { return d.Do() }

func helper() int { return 3 }

// UseVal references helper outside call position: a function-value
// edge.
func UseVal() func() int {
	f := helper
	return f
}

// CallsStatic has plain static edges.
func CallsStatic() int { return helper() + Rec(2) }
