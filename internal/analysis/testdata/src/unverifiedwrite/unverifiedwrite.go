// Fixture for the unverifiedwrite analyzer: network bytes (downloader
// fetches, inbound request bodies) must pass the Verifier before
// reaching durable stores.
package fixture

import (
	"context"
	"io"
	"net/http"

	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/server"
)

// Fetched bytes cached without verification.
func cacheFetched(d *server.Downloader, st *disc.LocalStorage) error {
	raw, err := d.Fetch("http://cdn.example", "app.xml")
	if err != nil {
		return err
	}
	return st.Put("cache", "app.xml", raw) // want unverifiedwrite
}

// Fetched bytes verified through the pipeline driver first: clean.
func cacheVerified(d *server.Downloader, op *core.Opener, st *disc.LocalStorage) error {
	raw, err := d.Fetch("http://cdn.example", "app.xml")
	if err != nil {
		return err
	}
	if _, err := op.Open(context.Background(), raw); err != nil {
		return err
	}
	return st.Put("cache", "app.xml", raw)
}

// Interprocedural: the persist helper is only dangerous when handed
// unverified network bytes.
func persist(st *disc.LocalStorage, data []byte) error {
	return st.Put("cache", "blob", data)
}

func fetchAndPersist(d *server.Downloader, st *disc.LocalStorage) error {
	raw, err := d.FetchContext(context.Background(), "http://cdn.example", "app.xml")
	if err != nil {
		return err
	}
	return persist(st, raw) // want unverifiedwrite
}

// Field source: an inbound request body is network taint.
func handleUpload(r *http.Request, st *disc.LocalStorage) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	return st.Put("inbox", "upload", body) // want unverifiedwrite
}

// Disc reads are deliberately NOT unverifiedwrite sources: authoring
// tools rewrite their own masters.
func repack(im *disc.Image, st *disc.LocalStorage) error {
	raw, err := im.Get("APP/main.xml")
	if err != nil {
		return err
	}
	return st.Put("cache", "app.xml", raw)
}
