// Package hpfixture exercises the hotpathalloc analyzer: an annotated
// root with each forbidden construct, a transitively hot helper, a
// coldpath escape, and a preallocated clean case.
package hpfixture

import "fmt"

// Sum is a hot-path root containing one of each forbidden construct.
//
//discvet:hotpath fixture root
func Sum(items []int) int {
	seen := map[int]bool{}                 // want hotpathalloc
	label := fmt.Sprintf("%d", len(items)) // want hotpathalloc hotpathalloc
	_ = label
	var out []int
	for _, it := range items {
		out = append(out, it) // want hotpathalloc
		seen[it] = true
	}
	add := func() int { return len(out) } // want hotpathalloc
	var boxed any = len(items)            // want hotpathalloc
	_ = boxed
	return helper(items) + add()
}

// helper is hot transitively: Sum calls it statically.
func helper(items []int) int {
	buf := []int{len(items)} // want hotpathalloc
	for _, it := range items {
		buf[0] += it
	}
	return buf[0]
}

// slow is an audited escape: enforcement stops at its boundary.
//
//discvet:coldpath fixture escape
func slow(total int) string {
	return fmt.Sprintf("total=%d", total)
}

// Report is hot but only calls the coldpath escape: clean.
//
//discvet:hotpath fixture root
func Report(total int) {
	_ = slow(total)
}

// Prealloc appends into a capacity-sized slice: clean.
//
//discvet:hotpath fixture root
func Prealloc(items []int) []int {
	out := make([]int, 0, len(items))
	for _, it := range items {
		out = append(out, it)
	}
	return out
}

// Unannotated is outside the hot set and may allocate freely.
func Unannotated(items []int) string {
	return fmt.Sprint(len(items))
}
