// Fixture for the errdominate analyzer: results of the verification
// producers may only be used on paths dominated by an err == nil check
// of the producing call's error.
package fixture

import (
	"context"
	"fmt"

	"discsec/internal/core"
)

// Used with no check anywhere in sight.
func unchecked(ctx context.Context, op *core.Opener, raw []byte) int {
	res, err := op.Open(ctx, raw)
	n := len(res.Signatures) // want errdominate
	_ = err
	return n
}

// The error is discarded outright, so no path can ever be guarded.
func discarded(ctx context.Context, op *core.Opener, raw []byte) bool {
	res, _ := op.Open(ctx, raw)
	return res.Doc != nil // want errdominate
}

// Consulted on the failure path: exactly the wrapping-attack regression.
func onFailurePath(ctx context.Context, op *core.Opener, raw []byte) int {
	res, err := op.Open(ctx, raw)
	if err != nil {
		return len(res.Signatures) // want errdominate
	}
	return len(res.Signatures)
}

// Checking a reassigned error says nothing about the first result.
func staleCheck(ctx context.Context, op *core.Opener, raw, other []byte) int {
	res, err := op.Open(ctx, raw)
	_, err = op.Open(ctx, other)
	if err == nil {
		return len(res.Signatures) // want errdominate
	}
	return 0
}

// Short-circuit order matters: the left operand runs before the check.
func wrongOrder(ctx context.Context, op *core.Opener, raw []byte) bool {
	res, err := op.Open(ctx, raw)
	if res.Doc != nil && err == nil { // want errdominate
		return true
	}
	return false
}

// Clean twin: the early-return guard dominates every later use.
func guarded(ctx context.Context, op *core.Opener, raw []byte) int {
	res, err := op.Open(ctx, raw)
	if err != nil {
		return 0
	}
	return len(res.Signatures)
}

// Clean twin: positive-form guard.
func guardedPositive(ctx context.Context, op *core.Opener, raw []byte) int {
	res, err := op.Open(ctx, raw)
	if err == nil {
		return len(res.Signatures)
	}
	return 0
}

// Clean twin: returning the pair is a passthrough for the caller to
// check, not a use.
func passthrough(ctx context.Context, op *core.Opener, raw []byte) (*core.OpenResult, error) {
	res, err := op.Open(ctx, raw)
	return res, err
}

// Clean twin: wrapping the error on the failure return still hands the
// caller the means to check.
func wrappedPassthrough(ctx context.Context, op *core.Opener, raw []byte) (*core.OpenResult, error) {
	res, err := op.Open(ctx, raw)
	if err != nil {
		return res, fmt.Errorf("open: %w", err)
	}
	return res, nil
}

// Clean twin: named results with a bare return carry no checked use.
func namedReturn(ctx context.Context, op *core.Opener, raw []byte) (res *core.OpenResult, err error) {
	res, err = op.Open(ctx, raw)
	return
}

// Clean twin: short-circuit in the safe order — the result is only
// touched once err == nil held.
func rightOrder(ctx context.Context, op *core.Opener, raw []byte) bool {
	res, err := op.Open(ctx, raw)
	if err == nil && res.Doc != nil {
		return true
	}
	return false
}
