// Package lofixture is the clean twin of the lockorder fixture: both
// call paths take A.mu strictly before B.mu, every wait happens after
// the mutex is released, and an RLock may nest under an RLock of a
// different lock. The analyzer must stay silent.
package lofixture

import "sync"

type A struct {
	mu sync.RWMutex
	b  *B
}

type B struct {
	mu sync.Mutex
}

// First takes A.mu then B.mu through second's summary.
func (a *A) First() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.second()
}

func (b *B) second() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// Again repeats the same A.mu -> B.mu order: consistent, no cycle.
// The send happens strictly after the unlock.
func (a *A) Again(v int, ch chan int) {
	a.mu.RLock()
	a.b.second()
	a.mu.RUnlock()
	ch <- v
}
