// Fixture for the httpclient analyzer. Loaded by driver_test.go as a
// package under internal/server (flagged) and under internal/disc
// (clean: the rule is scoped to the networked packages).
package fixture

import (
	"net/http"
	"time"
)

func deadlineless() {
	_ = http.DefaultClient // want httpclient
	resp, err := http.Get("http://content.example/app.xml") // want httpclient
	if err == nil {
		resp.Body.Close()
	}
	_ = &http.Client{Transport: http.DefaultTransport} // want httpclient
	_ = http.Client{}                                  // want httpclient
}

func bounded() {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get("http://content.example/app.xml")
	if err == nil {
		resp.Body.Close()
	}
	_ = http.Client{Timeout: 5 * time.Second, Transport: http.DefaultTransport}
}
