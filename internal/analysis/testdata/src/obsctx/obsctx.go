// Fixture for the obsctx analyzer. Loaded by driver_test.go as a
// package under internal/core (flagged) and under internal/disc
// (clean: the rule is scoped to the pipeline packages).
package fixture

import "context"

func fetch(ctx context.Context, name string) ([]byte, error) {
	_ = ctx
	return []byte(name), nil
}

// OpenPartial forwards its ctx to at least one call; any genuine use
// counts, even if another call site holds a Background.
func OpenPartial(ctx context.Context, name string) ([]byte, error) {
	if _, err := fetch(ctx, name); err != nil {
		return nil, err
	}
	return fetch(context.Background(), name)
}

// Open drops its ctx before a ctx-aware call.
func Open(ctx context.Context, name string) ([]byte, error) { // want obsctx
	return fetch(context.Background(), name)
}

// OpenPropagated forwards its ctx: clean.
func OpenPropagated(ctx context.Context, name string) ([]byte, error) {
	return fetch(ctx, name)
}

// OpenDeferred uses ctx only inside a closure: still a use, clean.
func OpenDeferred(ctx context.Context, name string) ([]byte, error) {
	run := func() ([]byte, error) { return fetch(ctx, name) }
	return run()
}

// OpenNoCtxCalls never calls a ctx-aware function, so an unused ctx
// is tolerated (the signature may exist for interface conformance).
func OpenNoCtxCalls(ctx context.Context, name string) string {
	return name
}

// openUnexported is not an entry point: unexported functions are
// outside the rule even when they drop ctx.
func openUnexported(ctx context.Context, name string) ([]byte, error) {
	return fetch(context.Background(), name)
}

// OpenUnderscore cannot propagate a blank ctx; the rule skips it.
func OpenUnderscore(_ context.Context, name string) ([]byte, error) {
	return fetch(context.Background(), name)
}
