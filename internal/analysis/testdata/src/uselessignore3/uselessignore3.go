// Fixture for stale suppressions naming the discvet v3 rules: every
// directive below sits on code its rule does not flag, so each must be
// reported as uselessignore. Assertions live in the test (the
// directive comment occupies the line, so `// want` markers cannot).
package fixture

import "sync"

type guard struct {
	mu sync.Mutex
	n  int
}

// Bump locks correctly: nothing for lockorder to report.
func (g *guard) Bump() {
	//discvet:ignore lockorder fixture: stale, nothing fires here
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// Spawn joins its goroutine: nothing for goroutineleak to report.
func Spawn(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	//discvet:ignore goroutineleak fixture: stale, the join below covers it
	go func() {
		defer wg.Done()
		ch <- 1
	}()
	wg.Wait()
}

// Walk is hot and allocation-free: nothing for hotpathalloc to report.
//
//discvet:hotpath fixture root
func Walk(items []int) int {
	total := 0
	for _, it := range items {
		//discvet:ignore hotpathalloc fixture: stale, additions do not allocate
		total += it
	}
	return total
}
