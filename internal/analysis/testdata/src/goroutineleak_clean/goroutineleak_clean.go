// Package glfixture is the clean twin of the goroutineleak fixture:
// the same spawn shapes, each tied to a termination signal. The
// analyzer must stay silent.
package glfixture

import (
	"context"
	"sync"
)

// ReceiveLoop is Leaky with a cancellation path added.
func ReceiveLoop(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ch:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Pump is SpawnForever with the spawner closing the feed channel.
func Pump(vals []int) {
	feed := make(chan int)
	go consume(feed)
	for _, v := range vals {
		feed <- v
	}
	close(feed)
}

func consume(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// Pool joins every worker before returning.
func Pool(n int, work func(int)) {
	var wg sync.WaitGroup
	results := make(chan int)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results <- i
		}(i)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		work(r)
	}
}
