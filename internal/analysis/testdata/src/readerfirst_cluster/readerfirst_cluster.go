// Fixture proving the readerfirst rule covers the cluster tier:
// Edge.OpenReader consumes its reader in one streaming digest pass, so
// buffering the payload first and re-wrapping it defeats the edge's
// whole point.
package fixture

import (
	"bytes"
	"context"
	"io"

	"discsec/internal/cluster"
)

// Inline wrap: the buffer flows straight back into the reader argument.
func inlineWrap(ctx context.Context, e *cluster.Edge, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	_, _, err = e.OpenReader(ctx, bytes.NewReader(buf)) // want readerfirst
	return err
}

// Two-step wrap: the reader is built first, then passed.
func twoStepWrap(ctx context.Context, e *cluster.Edge, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	br := bytes.NewReader(buf)
	_, _, err = e.OpenReader(ctx, br) // want readerfirst
	return err
}

// Clean: the original reader flows straight through.
func passThrough(ctx context.Context, e *cluster.Edge, r io.Reader) error {
	_, _, err := e.OpenReader(ctx, r)
	return err
}

// Clean: a reader over bytes that were never an io.ReadAll buffer.
func residentBytes(ctx context.Context, e *cluster.Edge, raw []byte) error {
	_, _, err := e.OpenReader(ctx, bytes.NewReader(raw))
	return err
}
