// Package hpfixture is the unannotated twin of the hotpathalloc
// fixture: the same allocating constructs with no //discvet:hotpath
// root anywhere, so the analyzer must stay silent.
package hpfixture

import "fmt"

func Sum(items []int) int {
	seen := map[int]bool{}
	label := fmt.Sprintf("%d", len(items))
	_ = label
	var out []int
	for _, it := range items {
		out = append(out, it)
		seen[it] = true
	}
	add := func() int { return len(out) }
	var boxed any = len(items)
	_ = boxed
	return helper(items) + add()
}

func helper(items []int) int {
	buf := []int{len(items)}
	for _, it := range items {
		buf[0] += it
	}
	return buf[0]
}
