// Fixture for the taintflow analyzer: disc-image content must pass the
// Verifier (core.Open*/xmldsig.Verify*) before reaching execution
// sinks (script evaluation, markup parsing).
package fixture

import (
	"context"

	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/markup"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
)

// Direct flow: source straight into the interpreter.
func direct(im *disc.Image, in *markup.Interp) error {
	raw, err := im.Get("APP/main.xml")
	if err != nil {
		return err
	}
	return in.RunSource(string(raw)) // want taintflow
}

// Markup sink: unverified content parsed as layout.
func layoutDirect(im *disc.Image) error {
	raw, err := im.Get("LAYOUT/l.xml")
	if err != nil {
		return err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	_, err = markup.ParseLayout(doc.Root()) // want taintflow
	return err
}

// Interprocedural: the source and the sink live in different functions;
// the flow is visible only through summaries.
func readManifest(im *disc.Image) []byte {
	raw, _ := im.Get("APP/main.xml")
	return raw
}

func execute(in *markup.Interp, code []byte) error {
	return in.RunSource(string(code))
}

func interproc(im *disc.Image, in *markup.Interp) error {
	return execute(in, readManifest(im)) // want taintflow
}

// Verified via the pipeline driver: core.Opener.Open sanitizes the raw
// bytes, so running them afterwards is clean.
func sanitized(op *core.Opener, im *disc.Image, in *markup.Interp) error {
	raw, err := im.Get("APP/main.xml")
	if err != nil {
		return err
	}
	if _, err := op.Open(context.Background(), raw); err != nil {
		return err
	}
	return in.RunSource(string(raw))
}

// Verified via the leaf verifier: xmldsig.VerifyDocument sanitizes the
// parsed document.
func verifiedDoc(im *disc.Image, opts xmldsig.VerifyOptions) error {
	raw, err := im.Get("APP/main.xml")
	if err != nil {
		return err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	if _, err := xmldsig.VerifyDocument(doc, opts); err != nil {
		return err
	}
	_, err = markup.ParseLayout(doc.Root())
	return err
}

// Captured variables flow through function literals analyzed in the
// enclosing state.
func throughClosure(im *disc.Image, in *markup.Interp) error {
	raw, err := im.Get("APP/main.xml")
	if err != nil {
		return err
	}
	run := func() error {
		return in.RunSource(string(raw)) // want taintflow
	}
	return run()
}
