// Fixture for the readerfirst analyzer: payloads buffered with
// io.ReadAll must not be re-wrapped in a reader just to call a
// streaming verification entry.
package fixture

import (
	"bytes"
	"context"
	"io"
	"strings"

	"discsec/internal/c14n"
	"discsec/internal/core"
	"discsec/internal/library"
	"discsec/internal/player"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
)

// Inline wrap: the buffer flows straight back into a reader argument.
func inlineWrap(ctx context.Context, op *core.Opener, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	_, err = op.OpenReader(ctx, bytes.NewReader(buf)) // want readerfirst
	return err
}

// Two-step wrap: the reader is built first, then passed.
func twoStepWrap(ctx context.Context, lib *library.Library, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	br := bytes.NewReader(buf)
	_, _, err = lib.OpenReader(ctx, br) // want readerfirst
	return err
}

// String conversion does not launder the buffer.
func stringWrap(ctx context.Context, e *player.Engine, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	_, err = e.LoadFrom(ctx, strings.NewReader(string(buf))) // want readerfirst
	return err
}

// Plain functions are entries too, not just methods.
func parseWrap(r io.Reader) (*xmldom.Document, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return xmldom.Parse(bytes.NewReader(buf)) // want readerfirst
}

func digestWrap(r io.Reader) ([]byte, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return xmldsig.DigestDocumentReader(bytes.NewBuffer(buf), c14n.Options{Exclusive: true}, "uri") // want readerfirst
}

// Clean: the original reader flows straight through.
func passThrough(ctx context.Context, op *core.Opener, r io.Reader) error {
	_, err := op.OpenReader(ctx, r)
	return err
}

// Clean: resident bytes use the []byte form of the API.
func byteForm(ctx context.Context, op *core.Opener, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	_, err = op.Open(ctx, buf)
	return err
}

// Clean: a reader over bytes that were never an io.ReadAll buffer.
func residentBytes(ctx context.Context, op *core.Opener, raw []byte) error {
	_, err := op.OpenReader(ctx, bytes.NewReader(raw))
	return err
}
