// Fixture for the weakrand analyzer, loaded as a package under
// internal/keymgmt: any math/rand import there is a finding.
package fixture

import (
	crand "crypto/rand"
	"math/rand" // want weakrand
)

func sessionKey() ([]byte, error) {
	key := make([]byte, 32)
	if _, err := crand.Read(key); err != nil {
		return nil, err
	}
	return key, nil
}

func jitter() int {
	return rand.Intn(250)
}
