// Fixture for the taintflow analyzer's library sanitizers: content
// served through the shared verification library (internal/library) is
// verified — a cache hit is a previously verified verdict — so its
// entry points sanitize like core.Open*. Content that skips the
// library (and every other verifier) still flags.
package fixture

import (
	"context"

	"discsec/internal/disc"
	"discsec/internal/library"
	"discsec/internal/markup"
)

// Library-served track bytes are verified before release: clean.
func servedTrack(lib *library.Library, in *markup.Interp) error {
	body, _, _, err := lib.TrackXML(context.Background(), "disc-a", "t-app-1")
	if err != nil {
		return err
	}
	return in.RunSource(string(body))
}

// OpenDocument sanitizes the raw disc bytes it verified: running them
// afterwards is clean, exactly like core.Opener.Open.
func cachedOpen(lib *library.Library, im *disc.Image, in *markup.Interp) error {
	raw, err := im.ReadIndexDocumentBytes()
	if err != nil {
		return err
	}
	if _, _, err := lib.OpenDocument(context.Background(), raw); err != nil {
		return err
	}
	return in.RunSource(string(raw))
}

// Skipping the library (and every verifier) still flags: the sanitizer
// entries must not whitelist the package, only the verified paths.
func bypassLibrary(im *disc.Image, in *markup.Interp) error {
	raw, err := im.ReadIndexDocumentBytes()
	if err != nil {
		return err
	}
	return in.RunSource(string(raw)) // want taintflow
}

// Mounting alone does not sanitize unrelated bytes: only data that
// flowed through a serving entry point is verified.
func mountThenBypass(lib *library.Library, im *disc.Image, in *markup.Interp) error {
	if err := lib.Mount(context.Background(), "disc-a", im); err != nil {
		return err
	}
	raw, err := im.Get("APP/extra.xml")
	if err != nil {
		return err
	}
	return in.RunSource(string(raw)) // want taintflow
}
