// Fixture for the auditpath analyzer: deny/fail-closed branches in the
// trusted-path packages must emit an obs audit event. Loaded under
// internal/player (flagged) and under internal/disc (clean: the rule is
// scoped to the trusted-path packages).
package fixture

import (
	"errors"

	"discsec/internal/access"
	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
)

// ErrExportForbidden is a fail-closed sentinel (Err* + forbidden).
var ErrExportForbidden = errors.New("fixture: export forbidden")

// errPlain is not fail-closed: no refusal word.
var errPlain = errors.New("fixture: something broke")

// Shape 1: verification-failure branch without an audit.
func verifyBad(doc *xmldom.Document, opts xmldsig.VerifyOptions) error {
	if _, err := xmldsig.VerifyDocument(doc, opts); err != nil { // want auditpath
		return err
	}
	return nil
}

// Split form: the verifier call is the preceding sibling statement.
func verifySplitBad(doc *xmldom.Document, opts xmldsig.VerifyOptions) error {
	_, err := xmldsig.VerifyDocument(doc, opts)
	if err != nil { // want auditpath
		return err
	}
	return nil
}

func verifyGood(rec *obs.Recorder, doc *xmldom.Document, opts xmldsig.VerifyOptions) error {
	if _, err := xmldsig.VerifyDocument(doc, opts); err != nil {
		rec.Audit(obs.AuditVerifyFailed, "fixture: signature rejected: %v", err)
		return err
	}
	return nil
}

// Shape 2: negated permission check without an audit.
func denyBad(g *access.GrantSet) bool {
	if !g.Allows(access.PermNetworkConnect, "http://x.example") { // want auditpath
		return false
	}
	return true
}

func denyGood(rec *obs.Recorder, g *access.GrantSet) bool {
	if !g.Allows(access.PermNetworkConnect, "http://x.example") {
		rec.Audit(obs.AuditPolicyDenied, "fixture: connect denied")
		return false
	}
	return true
}

// The deny-closure idiom: the audit lives in a local closure the
// branch calls.
func denyClosureGood(rec *obs.Recorder, g *access.GrantSet) bool {
	deny := func(op string) {
		rec.Audit(obs.AuditPolicyDenied, "fixture: %s denied", op)
	}
	if !g.Allows(access.PermNetworkConnect, "http://x.example") {
		deny("connect")
		return false
	}
	return true
}

// Shape 3: fail-closed sentinel returned without an audit.
func sentinelBad(allowed bool) error {
	if !allowed {
		return ErrExportForbidden // want auditpath
	}
	return nil
}

func sentinelGood(rec *obs.Recorder, allowed bool) error {
	if !allowed {
		rec.Audit(obs.AuditPolicyDenied, "fixture: export refused")
		return ErrExportForbidden
	}
	return nil
}

// A non-fail-closed sentinel needs no audit.
func plainError(ok bool) error {
	if !ok {
		return errPlain
	}
	return nil
}

// Deny branches inside function literals (the host-API binding idiom)
// are checked too.
func bindBad(g *access.GrantSet, register func(func(string) bool)) {
	register(func(target string) bool {
		if !g.Allows(access.PermNetworkConnect, target) { // want auditpath
			return false
		}
		return true
	})
}

func bindGood(rec *obs.Recorder, g *access.GrantSet, register func(func(string) bool)) {
	deny := func(op string) {
		rec.Audit(obs.AuditPolicyDenied, "fixture: %s denied", op)
	}
	register(func(target string) bool {
		if !g.Allows(access.PermNetworkConnect, target) {
			deny("connect " + target)
			return false
		}
		return true
	})
}
