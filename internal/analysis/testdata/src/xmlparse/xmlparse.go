// Fixture for the xmlparse analyzer. Loaded by driver_test.go as a
// package under internal/server (flagged) and under internal/xmldom
// (clean: the hardened parser itself may use encoding/xml).
package fixture

import "encoding/xml" // want xmlparse

func decode(data []byte) error {
	var v struct{ XMLName xml.Name }
	return xml.Unmarshal(data, &v)
}
