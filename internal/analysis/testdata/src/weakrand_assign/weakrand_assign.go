// Fixture for the weakrand analyzer, loaded as a package under
// internal/markup (outside the sensitive list): math/rand is allowed
// for jitter and shuffling, but not to mint key-material-named values.
package fixture

import "math/rand"

func retryDelay(r *rand.Rand) int {
	delay := r.Intn(250)
	return delay
}

func mintToken(r *rand.Rand) uint64 {
	token := r.Uint64() // want weakrand
	return token
}

func deriveKey(r *rand.Rand) []byte {
	var key []byte
	key = append(key, byte(r.Intn(256))) // want weakrand
	return key
}

func pickNonce(r *rand.Rand) uint64 {
	var nonce = r.Uint64() // want weakrand
	return nonce
}
