// Fixture for the errwrap analyzer: fmt.Errorf with an error
// argument must use %w.
package fixture

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func wrapBad(err error) error {
	return fmt.Errorf("open cluster: %v", err) // want errwrap
}

func wrapBadMixed(name string, err error) error {
	return fmt.Errorf("clip %q: %s", name, err) // want errwrap
}

func wrapGood(err error) error {
	return fmt.Errorf("open cluster: %w", err)
}

func wrapGoodWithDetail(err error) error {
	return fmt.Errorf("%w: after %d retries", err, 3)
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad count: %d", n)
}

func sentinelPlusDetail(v int) error {
	return fmt.Errorf("%w: detail %v", errBase, v)
}
