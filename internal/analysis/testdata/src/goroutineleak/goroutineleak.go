// Package glfixture exercises the goroutineleak analyzer: spawns with
// no termination signal are flagged; ctx-dominated, channel-close-
// dominated, join-dominated, and bounded spawns pass.
package glfixture

import (
	"context"
	"net"
	"net/http"
	"sync"
)

// Leaky spawns a receive loop nothing can end.
func Leaky(ch chan int) {
	go func() { // want goroutineleak
		for {
			<-ch
		}
	}()
}

// CtxBound's worker exits when the context is cancelled.
func CtxBound(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ch:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Gated workers block on a start signal the spawner closes, and are
// joined before return: the bounded worker-pool idiom.
func Gated(n int, start chan struct{}) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
		}()
	}
	close(start)
	wg.Wait()
}

// Joined sends one result; the spawner waits on the WaitGroup.
func Joined(results chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results <- compute()
	}()
	wg.Wait()
}

func compute() int { return 1 }

// Drained ranges over a channel the spawner closes.
func Drained(jobs chan int) {
	done := make(chan struct{})
	go func() {
		for j := range jobs {
			_ = j
		}
		close(done)
	}()
	close(jobs)
	<-done
}

// Forever loops unboundedly; spawning it leaks.
func Forever(ch chan int) {
	for {
		<-ch
	}
}

func SpawnForever(ch chan int) {
	go Forever(ch) // want goroutineleak
}

// finite runs to completion on its own: fine to fire and forget.
func finite() {}

func SpawnFinite() {
	go finite()
}

// ServeUnsupervised hands the listener to a known-blocking call with
// no shutdown plumbing in sight.
func ServeUnsupervised(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln) // want goroutineleak
}
