package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call-graph edge was discovered.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a resolved function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method, expanded to
	// every concrete implementation visible in the analyzed packages.
	EdgeInterface
	// EdgeFuncValue records a function whose value is taken (assigned,
	// passed, stored) inside the caller: the caller may invoke it
	// indirectly, so a conservative analysis must assume it does.
	EdgeFuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	}
	return "?"
}

// Edge is one caller->callee relationship.
type Edge struct {
	Callee *types.Func
	Kind   EdgeKind
	// Pos is the call site (or the reference site for EdgeFuncValue).
	Pos token.Pos
}

// FuncNode is one function or method with a body in the analyzed
// packages. Calls made inside function literals are attributed to the
// enclosing declaration.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []Edge
}

// CalleeSet returns the distinct callees of the node, sorted by full
// name, optionally restricted to the given edge kinds.
func (n *FuncNode) CalleeSet(kinds ...EdgeKind) []*types.Func {
	want := map[EdgeKind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	seen := map[*types.Func]bool{}
	var out []*types.Func
	for _, e := range n.Out {
		if len(kinds) > 0 && !want[e.Kind] {
			continue
		}
		if !seen[e.Callee] {
			seen[e.Callee] = true
			out = append(out, e.Callee)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// CallGraph is the module-wide call graph over a set of type-checked
// packages. It is conservative: interface calls fan out to every
// implementation in the analyzed set, and taking a function's value
// adds a may-call edge.
type CallGraph struct {
	// Funcs indexes every function and method that has a body in the
	// analyzed packages.
	Funcs map[*types.Func]*FuncNode

	// flowSummaryCache lazily holds the v4 value-flow summaries
	// (flow.go); module analyzers running in parallel share one
	// fixpoint through it.
	flowSummaryCache
}

// Lookup finds the node for the named function: pkgPath is the import
// path, recv the receiver type name ("" for plain functions).
func (g *CallGraph) Lookup(pkgPath, recv, name string) *FuncNode {
	for fn, node := range g.Funcs {
		if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
			continue
		}
		if recvTypeName(fn) == recv {
			return node
		}
	}
	return nil
}

// recvTypeName returns the receiver's named-type name for methods
// ("Image" for (*Image).Get), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// funcDisplayName renders a compact human name: "markup.Interp.RunSource"
// or "xmldsig.Verify".
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		pkg = parts[len(parts)-1] + "."
	}
	if recv := recvTypeName(fn); recv != "" {
		return pkg + recv + "." + fn.Name()
	}
	return pkg + fn.Name()
}

// BuildCallGraph constructs the call graph for the packages. Every
// *ast.FuncDecl becomes a node; bodies (including nested function
// literals) contribute edges:
//
//   - resolved direct calls -> EdgeStatic
//   - calls through an interface method -> EdgeInterface to each
//     implementation found among the packages' named types
//   - references to a function outside call position -> EdgeFuncValue
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[*types.Func]*FuncNode{}}
	impls := collectNamedTypes(pkgs)

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				addBodyEdges(node, pkg.Info, impls)
				g.Funcs[fn] = node
			}
		}
	}
	return g
}

// collectNamedTypes gathers every package-level named (non-interface)
// type so interface calls can be expanded to implementations.
func collectNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

func addBodyEdges(node *FuncNode, info *types.Info, impls []*types.Named) {
	// First pass: remember which identifiers are the Fun of a call, so
	// the second pass can tell call position from value position.
	callIdents := map[*ast.Ident]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callIdents[fun] = true
		case *ast.SelectorExpr:
			callIdents[fun.Sel] = true
		}
		addCallEdges(node, info, call, impls)
		return true
	})
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callIdents[id] {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		// Only module-analyzed functions matter as indirect targets.
		node.Out = append(node.Out, Edge{Callee: fn, Kind: EdgeFuncValue, Pos: id.Pos()})
		return true
	})
}

func addCallEdges(node *FuncNode, info *types.Info, call *ast.CallExpr, impls []*types.Named) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			// Interface dispatch: edge to every implementation's method.
			for _, named := range impls {
				if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
					continue
				}
				if m := methodByName(named, fn.Name()); m != nil {
					node.Out = append(node.Out, Edge{Callee: m, Kind: EdgeInterface, Pos: call.Lparen})
				}
			}
			return
		}
	}
	node.Out = append(node.Out, Edge{Callee: fn, Kind: EdgeStatic, Pos: call.Lparen})
}

// methodByName resolves the declared method on named (value or pointer
// receiver), or nil.
func methodByName(named *types.Named, name string) *types.Func {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if m, ok := ms.At(i).Obj().(*types.Func); ok && m.Name() == name {
			return m
		}
	}
	return nil
}
