package analysis

import (
	"go/ast"
	"go/types"
)

// readerFirstEntry is one reader-first verification entry point plus
// the index of its io.Reader parameter.
type readerFirstEntry struct {
	ref FuncRef
	arg int
}

// readerFirstEntries are the streaming entry points of the cold
// verification path. Each consumes its reader in a single pass, so
// materializing the payload first (io.ReadAll) and re-wrapping it in a
// bytes/strings reader defeats the pipeline: the whole document sits
// in memory anyway, plus the copy, while the []byte forms (Open,
// OpenDocument, LoadDocument) exist precisely for already-resident
// payloads.
var readerFirstEntries = []readerFirstEntry{
	{FuncRef{Pkg: pkgCore, Recv: "Opener", Name: "OpenReader"}, 1},
	{FuncRef{Pkg: pkgCore, Recv: "Opener", Name: "VerifyDetachedReader"}, 1},
	{FuncRef{Pkg: pkgLibrary, Recv: "Library", Name: "OpenReader"}, 1},
	{FuncRef{Pkg: pkgCluster, Recv: "Edge", Name: "OpenReader"}, 1},
	{FuncRef{Pkg: pkgPlayer, Recv: "Engine", Name: "LoadFrom"}, 1},
	{FuncRef{Pkg: pkgXMLDSig, Name: "DigestDocumentReader"}, 0},
	{FuncRef{Pkg: pkgXMLDSig, Name: "HashReader"}, 0},
	{FuncRef{Pkg: modulePath + "/internal/xmldom", Name: "Parse"}, 0},
	{FuncRef{Pkg: modulePath + "/internal/xmldom", Name: "ParseWithOptions"}, 0},
}

// readerWrapFuncs are the constructors that turn a resident buffer
// back into a reader.
var readerWrapFuncs = []FuncRef{
	{Pkg: "bytes", Name: "NewReader"},
	{Pkg: "bytes", Name: "NewBuffer"},
	{Pkg: "bytes", Name: "NewBufferString"},
	{Pkg: "strings", Name: "NewReader"},
}

// ReaderFirst flags buffering a payload with io.ReadAll only to
// re-stream it into a reader-first verification entry: the stream
// should flow straight in (pass the original reader), or the resident
// bytes should use the []byte form of the API.
var ReaderFirst = &Analyzer{
	Name: "readerfirst",
	Doc:  "payloads buffered with io.ReadAll must not be re-wrapped in a reader for the streaming verification entries; pass the original reader through, or use the []byte API form",
	Run:  runReaderFirst,
}

func runReaderFirst(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkReaderFirstFunc(pass, fd.Body)
		}
	}
}

// checkReaderFirstFunc runs the two-pass, function-local analysis:
// first collect every variable holding an io.ReadAll result (and every
// reader variable wrapping one), then flag streaming entry calls whose
// reader argument drains such a buffer.
func checkReaderFirstFunc(pass *Pass, body *ast.BlockStmt) {
	buffered := map[*types.Var]bool{} // []byte vars from io.ReadAll
	wrapped := map[*types.Var]bool{}  // reader vars wrapping a buffered var

	collect := func(lhs []ast.Expr, rhs []ast.Expr) {
		// Only the single-call forms matter: buf, err := io.ReadAll(r)
		// assigns through a tuple, so len(rhs) == 1 covers it.
		if len(rhs) != 1 {
			return
		}
		call, ok := rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.Info, call)
		switch {
		case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "io" && fn.Name() == "ReadAll":
			if v := assignedVar(pass.Info, lhs, 0); v != nil {
				buffered[v] = true
			}
		case matchAny(fn, readerWrapFuncs):
			if len(call.Args) == 1 && readerFirstBufferedArg(pass.Info, call.Args[0], buffered) {
				if v := assignedVar(pass.Info, lhs, 0); v != nil {
					wrapped[v] = true
				}
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			collect(x.Lhs, x.Rhs)
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, x)
			for _, e := range readerFirstEntries {
				if !e.ref.matches(fn) || e.arg >= len(x.Args) {
					continue
				}
				arg := x.Args[e.arg]
				bad := false
				switch a := arg.(type) {
				case *ast.CallExpr:
					// Inline wrap: OpenReader(ctx, bytes.NewReader(buf)).
					bad = matchAny(calleeFunc(pass.Info, a), readerWrapFuncs) &&
						len(a.Args) == 1 && readerFirstBufferedArg(pass.Info, a.Args[0], buffered)
				case *ast.Ident:
					// Two-step wrap: r := bytes.NewReader(buf); OpenReader(ctx, r).
					if v, ok := pass.Info.Uses[a].(*types.Var); ok {
						bad = wrapped[v]
					}
				}
				if bad {
					pass.Reportf(arg.Pos(),
						"payload buffered with io.ReadAll re-streamed into %s; pass the original reader straight through, or use the []byte form for resident bytes", fn.Name())
				}
			}
		}
		return true
	})
}

// readerFirstBufferedArg reports whether the wrap constructor's
// argument drains an io.ReadAll buffer, looking through string([]byte)
// conversions (the strings.NewReader(string(buf)) spelling).
func readerFirstBufferedArg(info *types.Info, arg ast.Expr, buffered map[*types.Var]bool) bool {
	if call, ok := arg.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isType := info.Uses[id].(*types.TypeName); isType {
				arg = call.Args[0] // conversion such as string(buf)
			}
		}
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	return ok && buffered[v]
}

// assignedVar resolves the i-th assignment target to its variable, or
// nil for blanks and non-identifier targets.
func assignedVar(info *types.Info, lhs []ast.Expr, i int) *types.Var {
	if i >= len(lhs) {
		return nil
	}
	id, ok := lhs[i].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
