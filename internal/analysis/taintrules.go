package analysis

// The concrete trust-boundary tables for the module, straight from the
// paper's Fig. 9 pipeline: manifest bytes from the disc image or a
// content server are untrusted until the Verifier (xmldsig) or the
// Verifier+Decryptor driver (core.Open*) has passed them.

const modulePath = "discsec"

var (
	pkgDisc    = modulePath + "/internal/disc"
	pkgServer  = modulePath + "/internal/server"
	pkgXMLDSig = modulePath + "/internal/xmldsig"
	pkgCore    = modulePath + "/internal/core"
	pkgMarkup  = modulePath + "/internal/markup"
	pkgPlayer  = modulePath + "/internal/player"
	pkgKeymgmt = modulePath + "/internal/keymgmt"
	pkgAccess  = modulePath + "/internal/access"
	pkgLibrary = modulePath + "/internal/library"
	pkgCluster = modulePath + "/internal/cluster"
)

// taintSources are reads crossing the trust boundary inward: disc image
// content, content-server fetches, and inbound HTTP request bodies.
var taintSources = []FuncRef{
	{Pkg: pkgDisc, Recv: "Image", Name: "Get"},
	{Pkg: pkgDisc, Recv: "Image", Name: "ReadIndexDocumentBytes"},
	{Pkg: pkgDisc, Recv: "Image", Name: "ResolveReference"},
	{Pkg: pkgServer, Recv: "Downloader", Name: "Fetch"},
	{Pkg: pkgServer, Recv: "Downloader", Name: "FetchContext"},
	{Pkg: pkgServer, Recv: "Downloader", Name: "FetchImage"},
	{Pkg: pkgServer, Recv: "Downloader", Name: "FetchImageContext"},
}

var networkTaintSources = []FuncRef{
	{Pkg: pkgServer, Recv: "Downloader", Name: "Fetch"},
	{Pkg: pkgServer, Recv: "Downloader", Name: "FetchContext"},
	{Pkg: pkgServer, Recv: "Downloader", Name: "FetchImage"},
	{Pkg: pkgServer, Recv: "Downloader", Name: "FetchImageContext"},
}

var requestBodySource = []FieldRef{
	{Pkg: "net/http", Type: "Request", Field: "Body"},
}

// taintSanitizers are the verified paths: a successful return means the
// data passed the Verifier (and, for core.Open*, the Decryptor).
var taintSanitizers = []FuncRef{
	{Pkg: pkgXMLDSig, Name: "Verify"},
	{Pkg: pkgXMLDSig, Name: "VerifyDocument"},
	{Pkg: pkgCore, Recv: "Opener", Name: "Open"},
	{Pkg: pkgCore, Recv: "Opener", Name: "OpenReader"},
	{Pkg: pkgCore, Recv: "Opener", Name: "OpenDocument"},
	{Pkg: pkgCore, Recv: "Opener", Name: "VerifyDetached"},
	{Pkg: pkgCore, Recv: "Opener", Name: "VerifyDetachedReader"},
	// The shared verification library: a cache hit is only ever a
	// previously verified verdict (fills run core.Opener.OpenDocument;
	// unsigned documents bypass the cache but still went through the
	// opener), so its serving entry points sanitize like core.Open*.
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenDocument"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenReader"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenDisc"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenTrack"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "TrackXML"},
}

// executionSinks are where content becomes behavior: script evaluation
// and markup rendering in the Interactive Application Engine.
var executionSinks = []FuncRef{
	{Pkg: pkgMarkup, Recv: "Interp", Name: "Run"},
	{Pkg: pkgMarkup, Recv: "Interp", Name: "RunSource"},
	{Pkg: pkgMarkup, Recv: "Interp", Name: "Call"},
	{Pkg: pkgMarkup, Name: "ParseLayout"},
	{Pkg: pkgMarkup, Name: "ParseTiming"},
	{Pkg: pkgPlayer, Recv: "Session", Name: "RunApplication"},
}

// persistenceSinks are durable trust-relevant writes: the player's
// local store, disc-image persistence, and the PEM key store.
var persistenceSinks = []FuncRef{
	{Pkg: pkgDisc, Recv: "LocalStorage", Name: "Put"},
	{Pkg: pkgDisc, Recv: "Image", Name: "SaveFile"},
	{Pkg: pkgDisc, Recv: "Image", Name: "WriteIndex"},
	{Pkg: pkgKeymgmt, Name: "SaveIdentity"},
	{Pkg: pkgKeymgmt, Name: "SaveCertPEM"},
}

// Taintflow enforces verify-before-execute across the whole module: no
// path from a disc/network source to an execution sink may skip the
// Verifier.
var Taintflow = &Analyzer{
	Name: "taintflow",
	Doc:  "unverified disc/network content must pass the Verifier (core.Open*/xmldsig.Verify*) before reaching execution sinks",
	RunModule: func(pass *ModulePass) {
		runTaint(pass, &TaintSpec{
			Sources:      taintSources,
			FieldSources: requestBodySource,
			Sanitizers:   taintSanitizers,
			Sinks:        executionSinks,
			SinkMsg:      "unverified disc/network content reaches execution sink %s without passing the Verifier (core.Open*/xmldsig.Verify*)",
			ForwardMsg:   "unverified disc/network content flows into %s, which forwards it to an execution sink; verify it first (core.Open*/xmldsig.Verify*)",
		})
	},
}

// UnverifiedWrite enforces verify-before-persist for network bytes:
// fetched content must not reach durable stores (local storage, disc
// image files, the key store) unverified. Disc reads are deliberately
// not sources here — loading re-verifies them — so authoring tools can
// rewrite their own masters.
var UnverifiedWrite = &Analyzer{
	Name: "unverifiedwrite",
	Doc:  "unverified network bytes must not reach disc-image or key-store persistence",
	RunModule: func(pass *ModulePass) {
		runTaint(pass, &TaintSpec{
			Sources:      networkTaintSources,
			FieldSources: requestBodySource,
			Sanitizers:   taintSanitizers,
			Sinks:        persistenceSinks,
			SinkMsg:      "unverified network bytes reach persistent store %s; verify before persisting (core.Open*/xmldsig.Verify*)",
			ForwardMsg:   "unverified network bytes flow into %s, which persists them; verify before persisting (core.Open*/xmldsig.Verify*)",
		})
	},
}
