package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// splitWords breaks an identifier into lower-cased words on camelCase
// humps, underscores, and digit boundaries: "clipDigestHMAC" ->
// [clip digest hmac], "want_sum" -> [want sum].
func splitWords(name string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// New word at lower->Upper and at the last upper of an
			// acronym run followed by a lower ("HMACKey" -> hmac key).
			prevLower := i > 0 && unicode.IsLower(runes[i-1])
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if prevLower || (len(cur) > 0 && nextLower) {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

// nameMatches reports whether any word of the identifier is in the
// vocabulary set.
func nameMatches(name string, vocab map[string]bool) bool {
	for _, w := range splitWords(name) {
		if vocab[w] {
			return true
		}
	}
	return false
}

// exprNameMatches reports whether the expression, unwrapped of parens
// and derefs, is an identifier / selector / index whose terminal name
// matches the vocabulary.
func exprNameMatches(e ast.Expr, vocab map[string]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if nameMatches(x.Sel.Name, vocab) {
				return true
			}
			e = x.X
		case *ast.Ident:
			return nameMatches(x.Name, vocab)
		default:
			return false
		}
	}
}

// calleeFunc resolves a call's callee to its types.Func, or nil for
// indirect calls, conversions, and builtins. Generic instantiations
// resolve to their origin declaration so call-graph lookups work for
// parameterized functions and methods.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		if base, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	if f != nil {
		f = f.Origin()
	}
	return f
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBytesLike reports whether t is a string, []byte, or [N]byte — the
// shapes a digest/MAC comparison takes.
func isBytesLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		return isByteElem(u.Elem())
	case *types.Array:
		return isByteElem(u.Elem())
	}
	return false
}

func isByteElem(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// pathHasInternalPkg reports whether the import path contains the
// segment pair internal/<name> for any of the given names.
func pathHasInternalPkg(path string, names ...string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] != "internal" {
			continue
		}
		for _, n := range names {
			if segs[i+1] == n {
				return true
			}
		}
	}
	return false
}

// exprKey renders a stable string for simple receiver expressions so
// Lock/Unlock pairs can be matched up (s.mu, (*p).mu, arr[i].mu).
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return "*" + exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[]"
	default:
		return "?"
	}
}
