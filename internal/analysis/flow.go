package analysis

// The value-flow framework behind the v4 rules (poolescape,
// errdominate, onceonly). It combines the SSA-lite CFG (ssa.go) with a
// classic iterative dataflow:
//
//   - Abstract values live in *virtual registers*. A register is
//     created at a definition site (a sync.Pool.Get, a verified-open
//     producer call, a one-shot reader read) and identified by that
//     site's position, so re-running the fixpoint converges. Local
//     variables map onto register *sets* — aliasing a value (`q := p`,
//     wrapping a reader) binds another name to the same register, which
//     is what lets a Put through one alias invalidate every other.
//   - Each rule supplies the lattice (mergeVal) and the transfer
//     function. poolescape/onceonly are MAY analyses (released on any
//     path wins); errdominate is a MUST analysis (a value is guarded
//     only if every path to the use saw err == nil for the producing
//     call's error).
//   - Branch sensitivity comes from the CFG's edge facts: the transfer
//     sees `err != nil`-shaped conditions with the truth value the edge
//     assumes, exactly the dominance information "checked before used"
//     needs. A fact guards a register only when the error variable still
//     holds the same definition it had when the register was bound
//     (vers), the renaming half of SSA.
//
// Interprocedural power rides the PR 4 call graph: flowSummaries
// computes, to a least fixpoint, which effective parameters a function
// releases into a pool, which reader parameters it consumes, and
// whether it returns pool-owned values — so `putParser(p)` releases p
// at the call site and `lib.OpenReader(ctx, r)` consumes r without
// either rule knowing those functions by name.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// vreg indexes the per-function register table.
type vreg int

// regInfo is the immutable metadata of one virtual register.
type regInfo struct {
	pos  token.Pos // definition site
	name string    // display name for findings
	// rootObj is the variable the register was rooted at (field-read
	// registers: the struct variable), used for strong-update kills.
	rootObj types.Object
	// errObj/errPos bind the register to a specific definition of an
	// error variable (errdominate).
	errObj types.Object
	errPos token.Pos
}

// flowState is the per-program-point abstract store.
type flowState struct {
	// objs binds local variables to the registers they may hold.
	objs map[types.Object][]vreg
	// vals holds each live register's abstract state (rule-specific
	// small enum; 0 means untracked).
	vals map[vreg]uint8
	// vers records the current definition position of variables whose
	// identity matters across reassignment (error vars, reader roots).
	vers map[types.Object]token.Pos
}

func newFlowState() *flowState {
	return &flowState{
		objs: map[types.Object][]vreg{},
		vals: map[vreg]uint8{},
		vers: map[types.Object]token.Pos{},
	}
}

func (s *flowState) clone() *flowState {
	c := &flowState{
		objs: make(map[types.Object][]vreg, len(s.objs)),
		vals: make(map[vreg]uint8, len(s.vals)),
		vers: make(map[types.Object]token.Pos, len(s.vers)),
	}
	for k, v := range s.objs {
		c.objs[k] = append([]vreg(nil), v...)
	}
	for k, v := range s.vals {
		c.vals[k] = v
	}
	for k, v := range s.vers {
		c.vers[k] = v
	}
	return c
}

// equal reports deep equality (fixpoint detection).
func (s *flowState) equal(o *flowState) bool {
	if len(s.objs) != len(o.objs) || len(s.vals) != len(o.vals) || len(s.vers) != len(o.vers) {
		return false
	}
	for k, v := range s.objs {
		ov, ok := o.objs[k]
		if !ok || len(ov) != len(v) {
			return false
		}
		for i := range v {
			if v[i] != ov[i] {
				return false
			}
		}
	}
	for k, v := range s.vals {
		if ov, ok := o.vals[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range s.vers {
		if ov, ok := o.vers[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// mergeInto folds src into dst under the rule's value merge, returning
// whether dst changed. Register sets union; versions that disagree are
// dropped (the consuming rule treats a missing version conservatively).
func (s *flowState) mergeInto(dst *flowState, mergeVal func(a, b uint8) uint8) bool {
	changed := false
	for obj, regs := range s.objs {
		have := dst.objs[obj]
		for _, r := range regs {
			if !containsReg(have, r) {
				have = append(have, r)
				changed = true
			}
		}
		sort.Slice(have, func(i, j int) bool { return have[i] < have[j] })
		dst.objs[obj] = have
	}
	for r, v := range s.vals {
		if dv, ok := dst.vals[r]; ok {
			m := mergeVal(dv, v)
			if m != dv {
				dst.vals[r] = m
				changed = true
			}
		} else {
			dst.vals[r] = v
			changed = true
		}
	}
	for obj, pos := range s.vers {
		if dp, ok := dst.vers[obj]; ok {
			if dp != pos {
				delete(dst.vers, obj)
				changed = true
			}
		} else {
			dst.vers[obj] = pos
			changed = true
		}
	}
	return changed
}

func containsReg(regs []vreg, r vreg) bool {
	for _, x := range regs {
		if x == r {
			return true
		}
	}
	return false
}

// flowRule is one rule's semantics plugged into the runner.
type flowRule interface {
	// mergeVal joins two abstract states of one register at a CFG merge.
	mergeVal(a, b uint8) uint8
	// transferNode interprets one CFG node (statement or condition
	// expression), mutating st; findings are reported only when
	// fa.reporting is true.
	transferNode(fa *flowAnalysis, st *flowState, n ast.Node)
	// applyFact folds one assumed branch outcome into st.
	applyFact(fa *flowAnalysis, st *flowState, f branchFact)
}

// flowAnalysis carries one function body through one rule.
type flowAnalysis struct {
	pass *ModulePass
	pkg  *Package
	info *types.Info
	rule flowRule

	regs    []*regInfo
	regAt   map[token.Pos]vreg
	fieldAt map[fieldRegKey]vreg

	reporting bool
	reported  map[token.Pos]bool
}

// fieldRegKey identifies a field-read register: the root variable, its
// definition version, and the field name (so resp.Body after resp is
// reassigned is a different register).
type fieldRegKey struct {
	obj   types.Object
	ver   token.Pos
	field string
}

// register returns the register for the definition site, creating it on
// first touch.
func (fa *flowAnalysis) register(pos token.Pos, name string, root types.Object) vreg {
	if r, ok := fa.regAt[pos]; ok {
		return r
	}
	r := vreg(len(fa.regs))
	fa.regs = append(fa.regs, &regInfo{pos: pos, name: name, rootObj: root})
	fa.regAt[pos] = r
	return r
}

// fieldRegister returns the register for a field read rooted at obj
// under its current version.
func (fa *flowAnalysis) fieldRegister(st *flowState, obj types.Object, field string, pos token.Pos) vreg {
	key := fieldRegKey{obj: obj, ver: st.vers[obj], field: field}
	if r, ok := fa.fieldAt[key]; ok {
		return r
	}
	r := vreg(len(fa.regs))
	fa.regs = append(fa.regs, &regInfo{pos: pos, name: obj.Name() + "." + field, rootObj: obj})
	fa.fieldAt[key] = r
	return r
}

// killRoot resets every register rooted at obj: a strong update to the
// root variable makes previously read/obtained values unreachable
// through it.
func (fa *flowAnalysis) killRoot(st *flowState, obj types.Object) {
	for r := range st.vals {
		if fa.regs[r].rootObj == obj {
			delete(st.vals, r)
		}
	}
}

func (fa *flowAnalysis) reportf(pos token.Pos, format string, args ...any) {
	if !fa.reporting || fa.reported[pos] {
		return
	}
	fa.reported[pos] = true
	fa.pass.Reportf(pos, format, args...)
}

// runFlowFunc executes the rule over one function body (or function
// literal body): fixpoint first, then a single in-order reporting pass
// so every finding is emitted exactly once, deterministically.
func runFlowFunc(pass *ModulePass, pkg *Package, body *ast.BlockStmt, rule flowRule, init func(*flowAnalysis, *flowState)) {
	fa := &flowAnalysis{
		pass:    pass,
		pkg:     pkg,
		info:    pkg.Info,
		rule:    rule,
		regAt:   map[token.Pos]vreg{},
		fieldAt: map[fieldRegKey]vreg{},
	}
	g := buildCFG(body)

	in := make([]*flowState, len(g.blocks))
	entry := newFlowState()
	if init != nil {
		init(fa, entry)
	}
	in[g.entry.id] = entry

	// Worklist over block ids; seeded in id order (approximately
	// topological for the structural builder).
	work := make([]bool, len(g.blocks))
	queue := []int{g.entry.id}
	work[g.entry.id] = true
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		work[id] = false
		blk := g.blocks[id]
		if in[id] == nil {
			continue
		}
		st := in[id].clone()
		for _, n := range blk.nodes {
			rule.transferNode(fa, st, n)
		}
		for _, e := range blk.succs {
			es := st
			if len(e.assumes) > 0 {
				es = st.clone()
				for _, f := range e.assumes {
					rule.applyFact(fa, es, f)
				}
			}
			if in[e.to.id] == nil {
				in[e.to.id] = es.clone()
			} else if !es.mergeInto(in[e.to.id], rule.mergeVal) {
				continue
			}
			if !work[e.to.id] {
				work[e.to.id] = true
				queue = append(queue, e.to.id)
			}
		}
	}

	// Reporting pass: reachable blocks in id order (source order for the
	// structural builder), transfer once with reporting enabled.
	fa.reporting = true
	fa.reported = map[token.Pos]bool{}
	for _, blk := range g.blocks {
		if in[blk.id] == nil || !g.reachable(blk) {
			continue
		}
		st := in[blk.id].clone()
		for _, n := range blk.nodes {
			rule.transferNode(fa, st, n)
		}
	}
}

// runFlowModule runs the rule over every function declaration in the
// module and every function literal as an independent root, in
// deterministic order. init seeds the entry state of declarations
// (e.g. one-shot reader parameters); literals start empty.
func runFlowModule(pass *ModulePass, rule flowRule, init func(*flowAnalysis, *FuncNode, *flowState)) {
	nodes := sortedFuncNodes(pass.Graph)
	for _, n := range nodes {
		node := n
		var seed func(*flowAnalysis, *flowState)
		if init != nil {
			seed = func(fa *flowAnalysis, st *flowState) { init(fa, node, st) }
		}
		runFlowFunc(pass, n.Pkg, n.Decl.Body, rule, seed)
		// Function literals: fresh roots with no carried-in facts.
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok {
				runFlowFunc(pass, node.Pkg, lit.Body, rule, nil)
				return false
			}
			return true
		})
	}
}

// sortedFuncNodes returns the call graph's nodes in declaration order.
func sortedFuncNodes(g *CallGraph) []*FuncNode {
	nodes := make([]*FuncNode, 0, len(g.Funcs))
	for _, n := range g.Funcs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	return nodes
}

// effectiveArgs returns the call's arguments with a method-value
// receiver prepended, aligning argument indexes with funcParams (the
// same convention the taint engine uses).
func effectiveArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			args = append(args, sel.X)
		}
	}
	return append(args, call.Args...)
}

// --- Interprocedural summaries -------------------------------------

// flowSummary abstracts one function for the value-flow rules. Bits
// index effective parameters (receiver first), saturating at 61 like
// the taint lattice.
type flowSummary struct {
	// releases: parameter i is Put back into a sync.Pool on some path.
	releases uint64
	// consumes: reader parameter i is consumed (streamed, drained, or
	// passed to a consuming callee) on some path.
	consumes uint64
	// returnsPooled: a sync.Pool.Get result may flow to a return value.
	returnsPooled bool
}

// flowSums lazily computes and caches the summaries on the call graph,
// so parallel module analyzers share one fixpoint.
func (g *CallGraph) flowSums() map[*types.Func]*flowSummary {
	g.flowOnce.Do(func() {
		g.flowSummaries = computeFlowSummaries(g)
	})
	return g.flowSummaries
}

func computeFlowSummaries(g *CallGraph) map[*types.Func]*flowSummary {
	sums := map[*types.Func]*flowSummary{}
	for fn := range g.Funcs {
		sums[fn] = &flowSummary{}
	}
	nodes := sortedFuncNodes(g)
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			got := scanFlowSummary(n, sums)
			cur := sums[n.Fn]
			if got != *cur {
				*cur = got
				changed = true
			}
		}
	}
	return sums
}

// scanFlowSummary recomputes one function's summary under the current
// summary map. The scan is a MAY analysis over the plain AST: any path
// releasing/consuming a parameter sets the bit. Function literals are
// skipped — a release inside a deferred or spawned closure happens at
// an unknowable time, so crediting it to the enclosing function would
// be wrong in both directions.
func scanFlowSummary(n *FuncNode, sums map[*types.Func]*flowSummary) flowSummary {
	var out flowSummary
	params := funcParams(n.Pkg.Info, n.Decl)
	// aliasBits maps a local variable to the parameter bits whose value
	// identity it carries (q := p, cr := &countReader{r: r},
	// br := bufio.NewReader(r)), so a release or consume through the
	// alias is credited to the parameter.
	aliasBits := map[types.Object]uint64{}
	var bitsOf func(e ast.Expr) uint64
	bitsOf = func(e ast.Expr) uint64 {
		e = unwrapValueExpr(ast.Unparen(e))
		switch x := e.(type) {
		case *ast.Ident:
			obj := n.Pkg.Info.Uses[x]
			if obj == nil {
				return 0
			}
			for i, p := range params {
				if p == obj {
					return summaryBit(i)
				}
			}
			return aliasBits[obj]
		case *ast.CompositeLit:
			var bits uint64
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					bits |= bitsOf(kv.Value)
				} else {
					bits |= bitsOf(elt)
				}
			}
			return bits
		case *ast.CallExpr:
			fn := calleeFunc(n.Pkg.Info, x)
			if fn == nil {
				return 0
			}
			if ref, ok := readerWrapperFor(fn); ok {
				args := effectiveArgs(n.Pkg.Info, x)
				var bits uint64
				if ref.Arg < 0 {
					for _, a := range args {
						bits |= bitsOf(a)
					}
				} else if ref.Arg < len(args) {
					bits = bitsOf(args[ref.Arg])
				}
				return bits
			}
		}
		return 0
	}
	paramBitOf := func(e ast.Expr) (uint64, bool) {
		bits := bitsOf(e)
		return bits, bits != 0
	}
	// pooled tracks local variables holding pool-owned values.
	pooled := map[types.Object]bool{}
	isPooledExpr := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		if call, ok := e.(*ast.CallExpr); ok {
			fn := calleeFunc(n.Pkg.Info, call)
			if fn == nil {
				return false
			}
			if matchAny(fn, poolGetFuncs) {
				return true
			}
			if s, ok := sums[fn]; ok && s.returnsPooled {
				return true
			}
			return false
		}
		if id, ok := e.(*ast.Ident); ok {
			return pooled[n.Pkg.Info.Uses[id]]
		}
		return false
	}

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := n.Pkg.Info.Defs[id]
				if obj == nil {
					obj = n.Pkg.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				pooled[obj] = isPooledExpr(s.Rhs[i])
				aliasBits[obj] = bitsOf(s.Rhs[i])
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if isPooledExpr(r) {
					out.returnsPooled = true
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(n.Pkg.Info, s)
			if fn == nil {
				return true
			}
			args := effectiveArgs(n.Pkg.Info, s)
			if matchAny(fn, poolPutFuncs) && len(s.Args) == 1 {
				if bit, ok := paramBitOf(s.Args[0]); ok {
					out.releases |= bit
				}
				return true
			}
			if ref, ok := readerConsumerFor(fn); ok {
				if ref.Arg < len(args) {
					if bit, ok := paramBitOf(args[ref.Arg]); ok {
						out.consumes |= bit
					}
				}
				return true
			}
			if csum, ok := sums[fn]; ok {
				for j, a := range args {
					bit, ok := paramBitOf(a)
					if !ok {
						continue
					}
					if csum.releases&summaryBit(j) != 0 {
						out.releases |= bit
					}
					if csum.consumes&summaryBit(j) != 0 {
						out.consumes |= bit
					}
				}
			}
		}
		return true
	})
	return out
}

func summaryBit(i int) uint64 {
	if i > 61 {
		i = 61
	}
	return 1 << uint(i)
}

// flowOnce/flowSummaries live on CallGraph so every v4 rule — possibly
// running concurrently under the parallel driver — shares one
// summary fixpoint per Run.
type flowSummaryCache struct {
	flowOnce      sync.Once
	flowSummaries map[*types.Func]*flowSummary
}
