package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock rule. On top of the
// lockset engine (locksets.go) it reports three things:
//
//   - cycles in the module-wide lock-acquisition-order graph: lock B
//     taken while A is held (directly or through any statically
//     resolved callee) adds edge A->B; a cycle means two goroutines
//     can each hold one lock and wait forever for the other;
//   - a potentially indefinite wait — channel operation, select with
//     no default, or a call matched by the blockingSinks table — while
//     a mutex is held, which stalls every contender of that mutex for
//     as long as the wait lasts;
//   - re-acquiring the same receiver's mutex while already holding it,
//     a guaranteed self-deadlock.
//
// The order graph abstracts locks per declaration (struct field or
// package-level var), so distinct instances of one field share a
// node; same-field nesting across instances is deliberately not a
// self-edge. See DESIGN.md §12 for the soundness trade-offs.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "no lock-acquisition-order cycles; no indefinite waits while a mutex is held",
	RunModule: runLockOrder,
}

// orderEdge is one observed may-follow relation between named locks.
type orderEdge struct {
	from, to *types.Var
	pos      token.Pos // where the second lock was taken (or the call leading to it)
	inFunc   string
}

func runLockOrder(pass *ModulePass) {
	eng := newLockEngine(pass)

	edges := map[[2]*types.Var]*orderEdge{}
	addEdge := func(from, to *types.Var, pos token.Pos, in string) {
		if from == nil || to == nil || from == to {
			return
		}
		k := [2]*types.Var{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = &orderEdge{from: from, to: to, pos: pos, inFunc: in}
		}
	}

	w := &lockWalker{eng: eng}
	w.onAcquire = func(held []*heldLock, taken *heldLock) {
		for _, h := range held {
			if h.key == taken.key {
				if h.write || taken.write {
					pass.Reportf(taken.pos,
						"%s locked again while already held (acquired at %s): guaranteed self-deadlock",
						taken.name, pass.Fset.Position(h.pos))
				}
				continue
			}
			addEdge(h.v, taken.v, taken.pos, funcDisplayName(w.fn.Fn))
		}
	}
	w.onBlocked = func(held []*heldLock, what string, pos token.Pos) {
		pass.Reportf(pos, "%s held across %s: contenders stall for as long as the wait lasts",
			heldNames(held), what)
	}
	w.onCall = func(held []*heldLock, callee *types.Func, pos token.Pos) {
		node, ok := eng.mp.Graph.Funcs[callee]
		if !ok {
			return
		}
		sum := eng.sums[node.Fn]
		for _, v := range sortedLockVars(sum.acquired, eng.names) {
			for _, h := range held {
				addEdge(h.v, v, pos, funcDisplayName(w.fn.Fn))
			}
		}
		// A callee in blockingSinks already reported through onBlocked;
		// only the transitive may-block summary needs a report here.
		if sum.blocks != "" && !matchAny(callee, blockingSinks) {
			pass.Reportf(pos, "%s held across call to %s, which may block on %s",
				heldNames(held), funcDisplayName(callee), sum.blocks)
		}
	}
	w.walkModule()

	reportLockCycles(pass, eng, edges)
}

// heldNames renders the held set for a diagnostic.
func heldNames(held []*heldLock) string {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.name
	}
	return "mutex " + strings.Join(names, ", ")
}

// sortedLockVars orders a lock set by display name for deterministic
// edge insertion.
func sortedLockVars(set map[*types.Var]token.Pos, names map[*types.Var]string) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if names[out[i]] != names[out[j]] {
			return names[out[i]] < names[out[j]]
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// reportLockCycles finds strongly connected components of the order
// graph and reports one diagnostic per cyclic component, tracing a
// concrete loop through it.
func reportLockCycles(pass *ModulePass, eng *lockEngine, edges map[[2]*types.Var]*orderEdge) {
	succ := map[*types.Var][]*types.Var{}
	var nodes []*types.Var
	seen := map[*types.Var]bool{}
	for k := range edges {
		for _, v := range k[:] {
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
		succ[k[0]] = append(succ[k[0]], k[1])
	}
	name := func(v *types.Var) string { return eng.names[v] }
	sort.Slice(nodes, func(i, j int) bool { return name(nodes[i]) < name(nodes[j]) })
	for _, v := range nodes {
		s := succ[v]
		sort.Slice(s, func(i, j int) bool { return name(s[i]) < name(s[j]) })
	}

	for _, scc := range stronglyConnected(nodes, succ) {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[*types.Var]bool{}
		for _, v := range scc {
			inSCC[v] = true
		}
		// Trace one loop: start at the smallest-named lock, greedily
		// follow the smallest in-component successor until a repeat.
		sort.Slice(scc, func(i, j int) bool { return name(scc[i]) < name(scc[j]) })
		path := []*types.Var{scc[0]}
		index := map[*types.Var]int{scc[0]: 0}
		for {
			cur := path[len(path)-1]
			var next *types.Var
			for _, c := range succ[cur] {
				if inSCC[c] {
					next = c
					break
				}
			}
			if next == nil {
				break // cannot happen in an SCC; defensive
			}
			if at, ok := index[next]; ok {
				loop := append(append([]*types.Var{}, path[at:]...), next)
				reportOneCycle(pass, eng, edges, loop)
				break
			}
			index[next] = len(path)
			path = append(path, next)
		}
	}
}

func reportOneCycle(pass *ModulePass, eng *lockEngine, edges map[[2]*types.Var]*orderEdge, loop []*types.Var) {
	var chain, sites []string
	for i := 0; i+1 < len(loop); i++ {
		e := edges[[2]*types.Var{loop[i], loop[i+1]}]
		if e == nil {
			return // defensive: incomplete trace
		}
		chain = append(chain, eng.names[loop[i]])
		sites = append(sites, fmt.Sprintf("%s->%s in %s at %s",
			eng.names[e.from], eng.names[e.to], e.inFunc, pass.Fset.Position(e.pos)))
	}
	chain = append(chain, eng.names[loop[len(loop)-1]])
	first := edges[[2]*types.Var{loop[0], loop[1]}]
	pass.Reportf(first.pos, "lock-order cycle %s: potential deadlock (%s)",
		strings.Join(chain, " -> "), strings.Join(sites, "; "))
}

// stronglyConnected is Tarjan's algorithm over the lock graph,
// returning components in a deterministic order.
func stronglyConnected(nodes []*types.Var, succ map[*types.Var][]*types.Var) [][]*types.Var {
	var (
		out     [][]*types.Var
		idx     = map[*types.Var]int{}
		low     = map[*types.Var]int{}
		onStack = map[*types.Var]bool{}
		stack   []*types.Var
		counter int
	)
	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		idx[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, wv := range succ[v] {
			if _, ok := idx[wv]; !ok {
				strong(wv)
				if low[wv] < low[v] {
					low[v] = low[wv]
				}
			} else if onStack[wv] && idx[wv] < low[v] {
				low[v] = idx[wv]
			}
		}
		if low[v] == idx[v] {
			var comp []*types.Var
			for {
				n := len(stack) - 1
				wv := stack[n]
				stack = stack[:n]
				onStack[wv] = false
				comp = append(comp, wv)
				if wv == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := idx[v]; !ok {
			strong(v)
		}
	}
	return out
}
