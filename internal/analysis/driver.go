package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded as.
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library. Module-local imports are resolved recursively
// from the module root; everything else (the standard library — the
// module has no external dependencies) is resolved by the stdlib
// source importer. Test files are never loaded: the invariants discvet
// enforces are about production code, and _test.go files may import
// packages the source importer cannot see.
type Loader struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader locates the module root at or above dir and reads the
// module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:  map[string]*Package{},
	}, nil
}

// Load expands the patterns ("./...", "./internal/disc", "dir/...")
// relative to the module root and returns the matched packages in
// path order. Directories named testdata, hidden directories, and
// directories without non-test Go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(path); err != nil {
				return err
			} else if ok {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the non-test Go files in dir as the
// package with the given import path. Results are memoized per path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-local import paths through the
// Loader and delegates the rest to the stdlib source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
