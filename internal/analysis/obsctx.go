package analysis

import (
	"go/ast"
	"go/types"
)

// obsCtxPackages are the pipeline packages whose exported entry points
// carry a context.Context for cancellation and observability (the
// recorder travels in the context). Accepting a ctx and then dropping
// it on the floor severs both: the callee can neither be cancelled
// nor observed, silently detaching a whole subtree of the Fig. 9
// pipeline from the recorder.
var obsCtxPackages = []string{"player", "core", "server", "library", "health", "cluster"}

// ObsCtx flags exported functions in the pipeline packages that take a
// context.Context but never use it, while calling at least one other
// context-aware function — the signature promises propagation the body
// does not deliver.
var ObsCtx = &Analyzer{
	Name: "obsctx",
	Doc:  "pipeline entry points must propagate their context.Context, not drop it before ctx-aware calls",
	Run:  runObsCtx,
}

func runObsCtx(pass *Pass) {
	if !pathHasInternalPkg(pass.Path, obsCtxPackages...) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxObj := ctxParam(pass.Info, fd)
			if ctxObj == nil {
				continue
			}
			used := false
			var firstCtxCall *ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					if pass.Info.Uses[x] == ctxObj {
						used = true
					}
				case *ast.CallExpr:
					if firstCtxCall == nil && calleeTakesContext(pass.Info, x) {
						firstCtxCall = x
					}
				}
				return !used
			})
			if !used && firstCtxCall != nil {
				pass.Reportf(fd.Name.Pos(),
					"%s takes a context.Context but drops it before calling context-aware functions; pass ctx through so cancellation and the observability recorder propagate", fd.Name.Name)
			}
		}
	}
}

// ctxParam returns the object of the function's first named
// context.Context parameter, or nil when there is none (an unnamed or
// underscore ctx cannot be propagated, so the rule does not apply).
func ctxParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// calleeTakesContext reports whether the call's resolved callee has a
// context.Context parameter — the callees ctx should be forwarded to.
func calleeTakesContext(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
