package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// weakRandPackages are the internal/<name> packages in which any
// math/rand use at all is an error: they mint key material, IVs,
// nonces, or session/license tokens, and a guessable PRNG there
// collapses the whole protection scheme.
var weakRandPackages = []string{
	"xmldsig", "xmlenc", "keymgmt", "omadcf", "disc", "core",
	"access", "rights", "server",
}

// weakRandVocab marks identifier words that name key material. In
// packages outside weakRandPackages, a math/rand-derived value
// assigned to such a name is still reported.
var weakRandVocab = map[string]bool{
	"key": true, "iv": true, "nonce": true, "token": true,
	"secret": true, "salt": true,
}

// WeakRand forbids math/rand where cryptographic material is
// produced: any import in the security-sensitive packages, and any
// assignment of a math/rand-derived value to a key/iv/nonce/token
// name elsewhere. crypto/rand is the only acceptable source.
var WeakRand = &Analyzer{
	Name: "weakrand",
	Doc:  "key material, IVs, nonces, and tokens must come from crypto/rand, never math/rand",
	Run:  runWeakRand,
}

func runWeakRand(pass *Pass) {
	sensitive := pathHasInternalPkg(pass.Path, weakRandPackages...)
	for _, f := range pass.Files {
		imported := false
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || (p != "math/rand" && p != "math/rand/v2") {
				continue
			}
			imported = true
			if sensitive {
				pass.Reportf(imp.Pos(),
					"%s imported in security-sensitive package %s; key material, IVs, nonces, and tokens must use crypto/rand",
					p, pass.Path)
			}
		}
		if sensitive || !imported {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					rhs := st.Rhs[0]
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					}
					reportWeakAssign(pass, lhs, rhs)
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) {
						reportWeakAssign(pass, name, st.Values[i])
					}
				}
			}
			return true
		})
	}
}

func reportWeakAssign(pass *Pass, lhs, rhs ast.Expr) {
	if !exprNameMatches(lhs, weakRandVocab) || !usesMathRand(pass.Info, rhs) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"%s derived from math/rand; key material, IVs, nonces, and tokens must use crypto/rand",
		exprKey(lhs))
}

// usesMathRand reports whether the expression references anything
// from math/rand or math/rand/v2.
func usesMathRand(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p == "math/rand" || p == "math/rand/v2" {
			found = true
		}
		if pn, ok := obj.(*types.PkgName); ok {
			if p := pn.Imported().Path(); p == "math/rand" || p == "math/rand/v2" {
				found = true
			}
		}
		return !found
	})
	return found
}
