package analysis

import (
	"go/types"
	"testing"
)

const cgPath = "discsec/internal/cgfixture"

func buildFixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	pkg := loadFixture(t, "callgraph", cgPath)
	return BuildCallGraph([]*Package{pkg})
}

// calleeNames renders a callee set as "Recv.Name" / "Name" strings.
func calleeNames(fns []*types.Func) []string {
	var out []string
	for _, fn := range fns {
		if recv := recvTypeName(fn); recv != "" {
			out = append(out, recv+"."+fn.Name())
			continue
		}
		out = append(out, fn.Name())
	}
	return out
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func TestCallGraphRecursion(t *testing.T) {
	g := buildFixtureGraph(t)
	rec := g.Lookup(cgPath, "", "Rec")
	if rec == nil {
		t.Fatal("Rec not in graph")
	}
	names := calleeNames(rec.CalleeSet(EdgeStatic))
	if !hasName(names, "Rec") {
		t.Errorf("Rec static callees = %v, want self edge", names)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := buildFixtureGraph(t)
	ci := g.Lookup(cgPath, "", "CallIface")
	if ci == nil {
		t.Fatal("CallIface not in graph")
	}
	names := calleeNames(ci.CalleeSet(EdgeInterface))
	// Value-receiver A and pointer-receiver B both implement Doer.
	if !hasName(names, "A.Do") || !hasName(names, "B.Do") {
		t.Errorf("CallIface interface callees = %v, want [A.Do B.Do]", names)
	}
	if static := ci.CalleeSet(EdgeStatic); len(static) != 0 {
		t.Errorf("CallIface static callees = %v, want none", calleeNames(static))
	}
}

func TestCallGraphFuncValue(t *testing.T) {
	g := buildFixtureGraph(t)
	uv := g.Lookup(cgPath, "", "UseVal")
	if uv == nil {
		t.Fatal("UseVal not in graph")
	}
	names := calleeNames(uv.CalleeSet(EdgeFuncValue))
	if !hasName(names, "helper") {
		t.Errorf("UseVal funcvalue callees = %v, want helper", names)
	}

	// A plain call is static, not a function value.
	cs := g.Lookup(cgPath, "", "CallsStatic")
	if cs == nil {
		t.Fatal("CallsStatic not in graph")
	}
	static := calleeNames(cs.CalleeSet(EdgeStatic))
	if !hasName(static, "helper") || !hasName(static, "Rec") {
		t.Errorf("CallsStatic static callees = %v, want [Rec helper]", static)
	}
	if fv := cs.CalleeSet(EdgeFuncValue); len(fv) != 0 {
		t.Errorf("CallsStatic funcvalue callees = %v, want none", calleeNames(fv))
	}
}

func TestCallGraphMethodNodes(t *testing.T) {
	g := buildFixtureGraph(t)
	if g.Lookup(cgPath, "A", "Do") == nil || g.Lookup(cgPath, "B", "Do") == nil {
		t.Error("method declarations missing from graph")
	}
	if g.Lookup(cgPath, "", "nosuchfunc") != nil {
		t.Error("Lookup invented a node")
	}
}
