// Package xmlsecuri defines the algorithm and namespace identifiers of
// the W3C XML security recommendations shared by the XML Signature and
// XML Encryption implementations.
//
// The 2005-era identifiers the paper's prototype used (SHA-1,
// RSA-PKCS#1 v1.5, Triple-DES-era CBC modes) are present for fidelity;
// modern identifiers (SHA-256/512, RSA-PSS-like usage via OAEP for key
// transport, AES-GCM) are the defaults used by the public API.
package xmlsecuri

// Namespace URIs.
const (
	DSigNamespace    = "http://www.w3.org/2000/09/xmldsig#"
	EncNamespace     = "http://www.w3.org/2001/04/xmlenc#"
	Enc11Namespace   = "http://www.w3.org/2009/xmlenc11#"
	XKMSNamespace    = "http://www.w3.org/2002/03/xkms#"
	DecryptNamespace = "http://www.w3.org/2002/07/decrypt#"
)

// Canonicalization method identifiers.
const (
	C14N10              = "http://www.w3.org/TR/2001/REC-xml-c14n-20010315"
	C14N10WithComments  = "http://www.w3.org/TR/2001/REC-xml-c14n-20010315#WithComments"
	ExcC14N             = "http://www.w3.org/2001/10/xml-exc-c14n#"
	ExcC14NWithComments = "http://www.w3.org/2001/10/xml-exc-c14n#WithComments"
)

// Transform identifiers.
const (
	TransformEnveloped  = "http://www.w3.org/2000/09/xmldsig#enveloped-signature"
	TransformBase64     = "http://www.w3.org/2000/09/xmldsig#base64"
	TransformDecryptXML = "http://www.w3.org/2002/07/decrypt#XML"
	TransformDecryptBin = "http://www.w3.org/2002/07/decrypt#Binary"
	TransformXPath      = "http://www.w3.org/TR/1999/REC-xpath-19991116"
)

// Digest method identifiers.
const (
	DigestSHA1   = "http://www.w3.org/2000/09/xmldsig#sha1"
	DigestSHA256 = "http://www.w3.org/2001/04/xmlenc#sha256"
	DigestSHA512 = "http://www.w3.org/2001/04/xmlenc#sha512"
)

// Signature method identifiers.
const (
	SigRSASHA1      = "http://www.w3.org/2000/09/xmldsig#rsa-sha1"
	SigRSASHA256    = "http://www.w3.org/2001/04/xmldsig-more#rsa-sha256"
	SigRSASHA512    = "http://www.w3.org/2001/04/xmldsig-more#rsa-sha512"
	SigRSAPSSSHA256 = "http://www.w3.org/2007/05/xmldsig-more#sha256-rsa-MGF1"
	SigECDSASHA256  = "http://www.w3.org/2001/04/xmldsig-more#ecdsa-sha256"
	SigHMACSHA1     = "http://www.w3.org/2000/09/xmldsig#hmac-sha1"
	SigHMACSHA256   = "http://www.w3.org/2001/04/xmldsig-more#hmac-sha256"
)

// Block encryption identifiers.
const (
	EncAES128CBC = "http://www.w3.org/2001/04/xmlenc#aes128-cbc"
	EncAES192CBC = "http://www.w3.org/2001/04/xmlenc#aes192-cbc"
	EncAES256CBC = "http://www.w3.org/2001/04/xmlenc#aes256-cbc"
	EncAES128GCM = "http://www.w3.org/2009/xmlenc11#aes128-gcm"
	EncAES256GCM = "http://www.w3.org/2009/xmlenc11#aes256-gcm"
)

// Key transport and key wrap identifiers.
const (
	KeyTransportRSA15   = "http://www.w3.org/2001/04/xmlenc#rsa-1_5"
	KeyTransportRSAOAEP = "http://www.w3.org/2001/04/xmlenc#rsa-oaep-mgf1p"
	KeyWrapAES128       = "http://www.w3.org/2001/04/xmlenc#kw-aes128"
	KeyWrapAES192       = "http://www.w3.org/2001/04/xmlenc#kw-aes192"
	KeyWrapAES256       = "http://www.w3.org/2001/04/xmlenc#kw-aes256"
)

// EncryptedData Type attribute values.
const (
	EncTypeElement      = "http://www.w3.org/2001/04/xmlenc#Element"
	EncTypeContent      = "http://www.w3.org/2001/04/xmlenc#Content"
	EncTypeEncryptedKey = "http://www.w3.org/2001/04/xmlenc#EncryptedKey"
)
