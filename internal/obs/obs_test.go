package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic clock forward on every read.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Inc("x")
	r.Add("x", 5)
	r.Observe(StageC14N, time.Millisecond)
	sp := r.Start(StageLoad)
	sp.End()
	r.Audit(AuditPolicyDenied, "denied %s", "net")
	r.SetEnabled(true)
	r.SetSink(&MemorySink{})
	if got := r.Counter("x"); got != 0 {
		t.Errorf("nil recorder counter = %d, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap.Stages) != 0 || len(snap.Counters) != 0 || len(snap.Audit) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", snap)
	}
	if tr := r.AuditTrail(); len(tr) != 0 {
		t.Errorf("nil recorder audit trail = %v, want empty", tr)
	}
}

func TestDisabledRecorderRecordsNothing(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(WithSink(sink))
	r.SetEnabled(false)
	r.Inc("c")
	r.Start(StageLoad).End()
	r.Audit(AuditVerifyFailed, "x")
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Stages) != 0 || len(snap.Audit) != 0 {
		t.Errorf("disabled recorder recorded: %+v", snap)
	}
	if len(sink.Spans()) != 0 || len(sink.Counters()) != 0 || len(sink.Audits()) != 0 {
		t.Error("disabled recorder streamed events to sink")
	}
}

func TestCountersAndSink(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(WithSink(sink))
	r.Inc("policy.permit")
	r.Add("policy.permit", 2)
	r.Inc("policy.deny")
	if got := r.Counter("policy.permit"); got != 3 {
		t.Errorf("policy.permit = %d, want 3", got)
	}
	recs := sink.Counters()
	if len(recs) != 3 {
		t.Fatalf("sink saw %d counter events, want 3", len(recs))
	}
	if recs[1].Name != "policy.permit" || recs[1].Delta != 2 || recs[1].Total != 3 {
		t.Errorf("second counter event = %+v", recs[1])
	}
}

func TestSpanDurationsAndSnapshot(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0), step: time.Millisecond}
	r := NewRecorder(WithClock(clock.now))
	for i := 0; i < 10; i++ {
		sp := r.Start(StageDigest)
		sp.End() // one clock step = 1ms per span
	}
	snap := r.Snapshot()
	if len(snap.Stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(snap.Stages))
	}
	st := snap.Stages[0]
	if st.Stage != StageDigest || st.Count != 10 {
		t.Fatalf("stage stat = %+v", st)
	}
	if st.Total != 10*time.Millisecond || st.Min != time.Millisecond || st.Max != time.Millisecond {
		t.Errorf("durations wrong: %+v", st)
	}
	if st.P50 > st.Max || st.P50 == 0 {
		t.Errorf("p50 = %v out of range (max %v)", st.P50, st.Max)
	}
	if st.Mean() != time.Millisecond {
		t.Errorf("mean = %v, want 1ms", st.Mean())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, 32},
		{100 * time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Monotonic upper bounds.
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket upper bounds not increasing at %d", i)
		}
	}
}

func TestQuantileClampedToMax(t *testing.T) {
	h := newHistogram()
	h.observe(3 * time.Microsecond) // bucket upper bound is 4µs
	if q := h.quantile(0.99); q != 3*time.Microsecond {
		t.Errorf("p99 of single 3µs sample = %v, want 3µs (clamped to max)", q)
	}
}

func TestAuditRingBounded(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < auditRingSize+10; i++ {
		r.Audit(AuditPolicyDenied, "event %d", i)
	}
	trail := r.AuditTrail()
	if len(trail) != auditRingSize {
		t.Fatalf("trail length = %d, want %d", len(trail), auditRingSize)
	}
	if trail[0].Seq != 11 || trail[len(trail)-1].Seq != auditRingSize+10 {
		t.Errorf("ring kept wrong window: first seq %d, last seq %d", trail[0].Seq, trail[len(trail)-1].Seq)
	}
	if r.Snapshot().AuditDropped != 10 {
		t.Errorf("dropped = %d, want 10", r.Snapshot().AuditDropped)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	if FromContext(ctx) != r {
		t.Error("FromContext did not return the attached recorder")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext on bare context should be nil")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // exercising nil tolerance
		t.Error("FromContext(nil) should be nil")
	}
	if WithRecorder(context.Background(), nil) != context.Background() {
		t.Error("WithRecorder(nil) should return ctx unchanged")
	}
}

func TestStageTableAndMetricsText(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0), step: 100 * time.Microsecond}
	r := NewRecorder(WithClock(clock.now))
	r.Start(StageC14N).End()
	r.Inc("http.requests")
	snap := r.Snapshot()

	table := snap.StageTable()
	for _, want := range []string{"stage", StageC14N, "http.requests"} {
		if !strings.Contains(table, want) {
			t.Errorf("stage table missing %q:\n%s", want, table)
		}
	}

	var b strings.Builder
	if err := snap.WriteMetrics(&b); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	text := b.String()
	for _, want := range []string{
		`discsec_counter{name="http.requests"} 1`,
		`discsec_stage_count{stage="c14n"} 1`,
		`discsec_stage_seconds{stage="c14n",quantile="0.5"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRecorder()
	r.Start(StageDecrypt).End()
	r.Inc("download.retries")
	r.Audit(AuditDegradedEnter, "trust service down")
	data, err := r.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatalf("MarshalJSONIndent: %v", err)
	}
	for _, want := range []string{`"stage": "decrypt"`, `"download.retries"`, `"degraded-trust-entered"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %q:\n%s", want, data)
		}
	}
}

func TestConcurrentRecorder(t *testing.T) {
	r := NewRecorder(WithSink(&MemorySink{}))
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Inc("c")
				sp := r.Start(StageLoad)
				sp.End()
				if i%50 == 0 {
					r.Audit(AuditVerifyFailed, "w")
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c"); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	snap := r.Snapshot()
	if snap.Stages[0].Count != workers*iters {
		t.Errorf("span count = %d, want %d", snap.Stages[0].Count, workers*iters)
	}
}
