package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of fixed log-scale buckets. Bucket i holds
// samples in ((1<<(i-1))µs, (1<<i)µs]; bucket 0 holds everything at or
// under 1µs and the last bucket absorbs everything above ~34s. The
// layout is fixed so merging and quantile estimation need no
// coordination beyond per-bucket atomics.
const histBuckets = 36

// Histogram is a fixed-bucket log-scale duration histogram. All
// operations are lock-free; concurrent observers only contend on
// independent atomic adds.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid when count > 0
	max     atomic.Int64 // nanoseconds
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 until first sample
	return h
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := int64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(us - 1))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(1<<uint(i)) * time.Microsecond
}

func (h *Histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts, clamped to the observed max so tiny sample sets don't report
// a bucket boundary far above anything seen.
func (h *Histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	max := time.Duration(h.max.Load())
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if ub := bucketUpper(i); ub < max {
				return ub
			}
			return max
		}
	}
	return max
}

// stat summarizes the histogram for snapshots.
func (h *Histogram) stat(stage string) StageStat {
	count := h.count.Load()
	st := StageStat{Stage: stage, Count: count}
	if count == 0 {
		return st
	}
	st.Total = time.Duration(h.sum.Load())
	st.Min = time.Duration(h.min.Load())
	st.Max = time.Duration(h.max.Load())
	st.P50 = h.quantile(0.50)
	st.P90 = h.quantile(0.90)
	st.P99 = h.quantile(0.99)
	return st
}
