// Package obs is the pipeline observability substrate: named counters,
// log-scale duration histograms, lightweight spans, and a structured
// security-audit event stream, built only on the standard library.
//
// A *Recorder aggregates everything. A nil *Recorder is the universal
// no-op — every method is safe on a nil receiver — so instrumented hot
// paths pay a pointer nil check when observability is absent and a
// single atomic load when a recorder is present but disabled. No clock
// is read and no allocation happens unless the recorder is live.
//
// Recorders travel through context.Context (WithRecorder/FromContext),
// so one recorder follows a load request across the facade, verifier,
// decryptor, policy engine, and script runtime without widening every
// signature with metrics plumbing. A pluggable Sink streams individual
// events (span ends, counter increments, audit events) to a consumer;
// with no sink installed the recorder only aggregates.
//
// Security-relevant transitions (signature verification failure, policy
// denial, degraded-trust entry/exit) are recorded as AuditEvents in a
// bounded ring buffer, giving operators an auditable trail of security
// decisions rather than pass/fail booleans (see SECURITY.md).
package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"discsec/internal/cowmap"
)

// Stage names used across the pipeline. Packages record spans under
// these constants so per-stage tables line up between the player, the
// server, and the bench tooling.
const (
	// StageLoad covers a whole engine load (parse → verify → decode).
	StageLoad = "load"
	// StageParse covers hardened XML parsing.
	StageParse = "parse"
	// StageDectrans covers the decryption-transform pass before
	// signature validation.
	StageDectrans = "dectrans"
	// StageC14N covers one canonicalization.
	StageC14N = "c14n"
	// StageDigest covers one reference validation (dereference,
	// transforms, hash, compare).
	StageDigest = "digest"
	// StageSignature covers cryptographic SignatureValue validation.
	StageSignature = "signature"
	// StageDecrypt covers one EncryptedData decryption.
	StageDecrypt = "decrypt"
	// StagePolicy covers one PDP decision.
	StagePolicy = "policy"
	// StageExecute covers application execution (markup + scripts).
	StageExecute = "execute"
	// StageDownload covers one content download (across retries).
	StageDownload = "download"
	// StageXKMS covers one XKMS request round trip.
	StageXKMS = "xkms"
	// StageLibrary covers one shared-library track open (cache lookup
	// plus, on a miss, the full verification fill).
	StageLibrary = "library"
	// StageCluster covers one cluster-tier open on an edge node
	// (replica lookup plus, on a miss, the forward/origin fill).
	StageCluster = "cluster"
)

// Audit event kinds.
const (
	// AuditVerifyFailed records a signature that failed validation.
	AuditVerifyFailed = "verify-failed"
	// AuditPolicyDenied records a permission the PDP denied.
	AuditPolicyDenied = "policy-denied"
	// AuditRuntimeDenied records a host-API operation refused at
	// runtime by the granted permission set.
	AuditRuntimeDenied = "runtime-denied"
	// AuditDegradedEnter records entry into degraded trust (stale
	// cached key binding served because the trust service is down).
	AuditDegradedEnter = "degraded-trust-entered"
	// AuditDegradedExit records recovery to live trust resolution.
	AuditDegradedExit = "degraded-trust-exited"
	// AuditDegradedServe records a cached verification verdict served
	// while the trust service is degraded (the verdict was filled from
	// live trust, but revocation checks may be stale).
	AuditDegradedServe = "degraded-trust-serve"
	// AuditBreakerTransition records a dependency circuit breaker
	// changing state (closed / open / half-open).
	AuditBreakerTransition = "breaker-transition"
	// AuditHealthChanged records a supervised component moving between
	// Healthy, Degraded, and Down.
	AuditHealthChanged = "component-health-changed"
	// AuditFailClosed records work refused outright because a
	// dependency it requires is down (e.g. a cold library fill while
	// the trust service's breaker is open).
	AuditFailClosed = "fail-closed"
	// AuditClusterEpoch records a cluster trust-epoch advance — a
	// revocation (or rollover) propagating fleet-wide. Recorded on the
	// origin when it bumps the epoch and on every edge that applies
	// the announce.
	AuditClusterEpoch = "cluster-epoch-advanced"
	// AuditClusterPartition records an edge refusing to serve because
	// it has missed its heartbeat budget: revocations may not be
	// reaching it, so it fails closed rather than serve possibly
	// stale verdicts.
	AuditClusterPartition = "cluster-partition-fail-closed"
)

// AuditEvent is one security-relevant decision.
type AuditEvent struct {
	// Seq orders events across the recorder's lifetime (1-based).
	Seq uint64 `json:"seq"`
	// Time is the recorder-clock timestamp.
	Time time.Time `json:"time"`
	// Kind is one of the Audit* constants.
	Kind string `json:"kind"`
	// Detail is a human-readable description of the decision.
	Detail string `json:"detail"`
}

// Sink consumes individual observability events as they happen. All
// methods must be safe for concurrent use; they run inline on the
// instrumented path, so they must be fast.
type Sink interface {
	// OnSpan observes a completed span.
	OnSpan(stage string, start time.Time, d time.Duration)
	// OnCounter observes a counter change and its new total.
	OnCounter(name string, delta, total int64)
	// OnAudit observes a security audit event.
	OnAudit(ev AuditEvent)
}

// auditRingSize bounds the retained audit trail.
const auditRingSize = 256

// Recorder aggregates counters, histograms, and audit events.
type Recorder struct {
	enabled atomic.Bool
	sink    atomic.Pointer[sinkBox]
	now     func() time.Time

	// counters and hists are copy-on-write: the instrumented hot paths
	// only ever read them (one atomic load, no key boxing), and the
	// tables stop growing once every stage and counter name has been
	// touched. sync.Map here cost one interface allocation per Add.
	counters cowmap.Map[string, *atomic.Int64]
	hists    cowmap.Map[string, *Histogram]

	auditMu      sync.Mutex
	auditSeq     uint64
	audit        []AuditEvent // ring buffer, newest at (start+len-1)%cap
	auditStart   int
	auditDropped uint64
}

// sinkBox wraps a Sink for atomic.Pointer (interfaces cannot be stored
// directly).
type sinkBox struct{ s Sink }

// Option configures a Recorder at construction.
type Option func(*Recorder)

// WithSink streams every event to s in addition to aggregation.
func WithSink(s Sink) Option {
	return func(r *Recorder) {
		if s != nil {
			r.sink.Store(&sinkBox{s: s})
		}
	}
}

// WithClock overrides the recorder's clock (tests, deterministic
// benches).
func WithClock(now func() time.Time) Option {
	return func(r *Recorder) {
		if now != nil {
			r.now = now
		}
	}
}

// NewRecorder creates an enabled recorder.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{now: time.Now}
	r.enabled.Store(true)
	for _, o := range opts {
		o(r)
	}
	return r
}

// SetEnabled toggles recording. While disabled every operation is a
// single atomic load.
func (r *Recorder) SetEnabled(v bool) {
	if r != nil {
		r.enabled.Store(v)
	}
}

// SetSink replaces the streaming sink (nil removes it). Aggregation is
// unaffected.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// live reports whether the recorder should record.
func (r *Recorder) live() bool {
	return r != nil && r.enabled.Load()
}

func (r *Recorder) clock() time.Time {
	if r.now != nil {
		return r.now()
	}
	return time.Now()
}

func (r *Recorder) loadSink() Sink {
	if b := r.sink.Load(); b != nil {
		return b.s
	}
	return nil
}

// Add adjusts a named counter by delta.
//
//discvet:hotpath counters tick inside verification inner loops
func (r *Recorder) Add(name string, delta int64) {
	if !r.live() {
		return
	}
	total := r.counters.GetOrCreate(name, newCounter).Add(delta)
	if s := r.loadSink(); s != nil {
		s.OnCounter(name, delta, total)
	}
}

// newCounter is GetOrCreate's first-touch factory: a declared function
// so the steady-state Add never builds a closure.
func newCounter() *atomic.Int64 { return new(atomic.Int64) }

// Inc increments a named counter.
//
//discvet:hotpath counters tick inside verification inner loops
func (r *Recorder) Inc(name string) { r.Add(name, 1) }

// Counter returns the current value of a named counter (0 if never
// touched).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	if c, ok := r.counters.Get(name); ok {
		return c.Load()
	}
	return 0
}

// Observe records one duration sample for a stage.
//
//discvet:hotpath one sample per reference validation / c14n pass
func (r *Recorder) Observe(stage string, d time.Duration) {
	if !r.live() {
		return
	}
	r.histogram(stage).observe(d)
}

func (r *Recorder) histogram(stage string) *Histogram {
	return r.hists.GetOrCreate(stage, newHistogram)
}

// Span is an in-flight stage measurement. The zero Span (from a nil or
// disabled recorder) is a no-op.
type Span struct {
	r     *Recorder
	stage string
	start time.Time
}

// Start begins a span for the stage. Call End exactly once.
//
//discvet:hotpath spans wrap every pipeline stage, including cache hits
func (r *Recorder) Start(stage string) Span {
	if !r.live() {
		return Span{}
	}
	return Span{r: r, stage: stage, start: r.clock()}
}

// End completes the span, recording its duration.
//
//discvet:hotpath spans wrap every pipeline stage, including cache hits
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := s.r.clock().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.r.histogram(s.stage).observe(d)
	if sink := s.r.loadSink(); sink != nil {
		sink.OnSpan(s.stage, s.start, d)
	}
}

// Audit records a security-relevant decision in the bounded audit ring
// and streams it to the sink.
//
//discvet:coldpath audit events are rare security decisions; formatting may allocate
func (r *Recorder) Audit(kind, format string, args ...any) {
	if !r.live() {
		return
	}
	ev := AuditEvent{Time: r.clock(), Kind: kind, Detail: fmt.Sprintf(format, args...)}

	r.auditMu.Lock()
	r.auditSeq++
	ev.Seq = r.auditSeq
	if len(r.audit) < auditRingSize {
		r.audit = append(r.audit, ev)
	} else {
		r.audit[r.auditStart] = ev
		r.auditStart = (r.auditStart + 1) % auditRingSize
		r.auditDropped++
	}
	r.auditMu.Unlock()

	if s := r.loadSink(); s != nil {
		s.OnAudit(ev)
	}
}

// AuditTrail returns the retained audit events, oldest first.
func (r *Recorder) AuditTrail() []AuditEvent {
	if r == nil {
		return nil
	}
	r.auditMu.Lock()
	defer r.auditMu.Unlock()
	out := make([]AuditEvent, 0, len(r.audit))
	for i := 0; i < len(r.audit); i++ {
		out = append(out, r.audit[(r.auditStart+i)%len(r.audit)])
	}
	return out
}

// ctxKey is the context key for the recorder.
type ctxKey struct{}

// WithRecorder returns a context carrying r. A nil r returns ctx
// unchanged.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the recorder from ctx, or nil (the no-op
// recorder) when none is attached.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// MemorySink is a Sink that retains every event in memory, for tests
// and interactive debugging. Safe for concurrent use.
type MemorySink struct {
	mu       sync.Mutex
	spans    []SpanRecord
	counters []CounterRecord
	audits   []AuditEvent
}

// SpanRecord is one completed span seen by a MemorySink.
type SpanRecord struct {
	Stage    string
	Start    time.Time
	Duration time.Duration
}

// CounterRecord is one counter change seen by a MemorySink.
type CounterRecord struct {
	Name         string
	Delta, Total int64
}

// OnSpan implements Sink.
func (m *MemorySink) OnSpan(stage string, start time.Time, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spans = append(m.spans, SpanRecord{Stage: stage, Start: start, Duration: d})
}

// OnCounter implements Sink.
func (m *MemorySink) OnCounter(name string, delta, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters = append(m.counters, CounterRecord{Name: name, Delta: delta, Total: total})
}

// OnAudit implements Sink.
func (m *MemorySink) OnAudit(ev AuditEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.audits = append(m.audits, ev)
}

// Spans returns the recorded spans in completion order.
func (m *MemorySink) Spans() []SpanRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]SpanRecord(nil), m.spans...)
}

// SpanStages returns just the stage names, in completion order.
func (m *MemorySink) SpanStages() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.spans))
	for i, s := range m.spans {
		out[i] = s.Stage
	}
	return out
}

// Counters returns the recorded counter changes in order.
func (m *MemorySink) Counters() []CounterRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]CounterRecord(nil), m.counters...)
}

// Audits returns the recorded audit events in order.
func (m *MemorySink) Audits() []AuditEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AuditEvent(nil), m.audits...)
}
