package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// StageStat summarizes one stage's duration histogram.
type StageStat struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Mean is the average duration per sample.
func (s StageStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// CounterStat is one named counter's current value.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time copy of a Recorder's aggregates, safe to
// render or serialize after the recorder moves on.
type Snapshot struct {
	Stages   []StageStat   `json:"stages"`
	Counters []CounterStat `json:"counters"`
	Audit    []AuditEvent  `json:"audit"`
	// AuditDropped counts audit events evicted from the ring.
	AuditDropped uint64 `json:"audit_dropped,omitempty"`
}

// Snapshot captures the recorder's current aggregates, sorted by stage
// and counter name. A nil recorder yields an empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.hists.Range(func(stage string, h *Histogram) bool {
		snap.Stages = append(snap.Stages, h.stat(stage))
		return true
	})
	sort.Slice(snap.Stages, func(i, j int) bool { return snap.Stages[i].Stage < snap.Stages[j].Stage })
	r.counters.Range(func(name string, c *atomic.Int64) bool {
		snap.Counters = append(snap.Counters, CounterStat{Name: name, Value: c.Load()})
		return true
	})
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	snap.Audit = r.AuditTrail()
	r.auditMu.Lock()
	snap.AuditDropped = r.auditDropped
	r.auditMu.Unlock()
	return snap
}

// StageTable renders the per-stage histogram summary as an aligned
// text table (the `-metrics` output of discplayer/discbench).
func (s Snapshot) StageTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %12s %12s %12s\n",
		"stage", "count", "total", "mean", "p50", "p90", "p99", "max")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "%-12s %8d %12s %12s %12s %12s %12s %12s\n",
			st.Stage, st.Count,
			fmtDur(st.Total), fmtDur(st.Mean()),
			fmtDur(st.P50), fmtDur(st.P90), fmtDur(st.P99), fmtDur(st.Max))
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "\n%-32s %12s\n", "counter", "value")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%-32s %12d\n", c.Name, c.Value)
		}
	}
	return b.String()
}

// fmtDur rounds durations for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}

// WriteMetrics writes the snapshot in a flat, line-oriented text
// exposition (served by the ContentServer's /metricsz endpoint):
//
//	discsec_counter{name="http.requests"} 42
//	discsec_stage_count{stage="c14n"} 128
//	discsec_stage_total_seconds{stage="c14n"} 0.003517
//	discsec_stage_seconds{stage="c14n",quantile="0.5"} 0.000016
func (s Snapshot) WriteMetrics(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "discsec_counter{name=%q} %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, st := range s.Stages {
		if _, err := fmt.Fprintf(w, "discsec_stage_count{stage=%q} %d\n", st.Stage, st.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "discsec_stage_total_seconds{stage=%q} %.6f\n", st.Stage, st.Total.Seconds()); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     time.Duration
		}{{"0.5", st.P50}, {"0.9", st.P90}, {"0.99", st.P99}} {
			if _, err := fmt.Fprintf(w, "discsec_stage_seconds{stage=%q,quantile=%q} %.6f\n", st.Stage, q.label, q.v.Seconds()); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "discsec_audit_events %d\n", len(s.Audit))
	return err
}

// MarshalJSONIndent serializes the snapshot for BENCH_obs.json.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
