package xmldom

import (
	"bytes"
	"io"
	"strings"

	"discsec/internal/xmlstream"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// AllowDoctype permits a document type declaration. Doctype
	// declarations are rejected by default: the XML security processing
	// model treats DTDs (entity expansion, default attributes) as an
	// attack surface.
	AllowDoctype bool
	// MaxDepth bounds element nesting; 0 means the default of 512.
	MaxDepth int
	// MaxTokens bounds the total token count; 0 means the default of
	// 4 * 1024 * 1024.
	MaxTokens int
}

// ErrDoctype is returned when a document contains a DOCTYPE declaration
// and ParseOptions.AllowDoctype is false. It is the xmlstream sentinel:
// the tokenizer under this parser is where the rejection happens.
var ErrDoctype = xmlstream.ErrDoctype

// Parse reads an XML document with default options.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithOptions(r, ParseOptions{})
}

// ParseString parses an XML document from a string with default options.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseBytes parses an XML document from a byte slice with default
// options.
func ParseBytes(b []byte) (*Document, error) {
	return Parse(bytes.NewReader(b))
}

// ParseWithOptions reads an XML document through the hardened streaming
// tokenizer (internal/xmlstream), which preserves namespace prefixes
// exactly as written and enforces the well-formedness the raw tokenizer
// does not (matching end tags, single document element, duplicate
// attribute rejection) plus the security limits in opts. The tree is
// materialized by a StreamBuilder, so a DOM parse and a streaming pass
// over the same input see the identical token stream.
func ParseWithOptions(r io.Reader, opts ParseOptions) (*Document, error) {
	b := NewStreamBuilder()
	err := xmlstream.Parse(r, xmlstream.Options{
		AllowDoctype: opts.AllowDoctype,
		MaxDepth:     opts.MaxDepth,
		MaxTokens:    opts.MaxTokens,
	}, b)
	if err != nil {
		return nil, err
	}
	return b.Document(), nil
}
