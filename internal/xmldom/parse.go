package xmldom

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// AllowDoctype permits a document type declaration. Doctype
	// declarations are rejected by default: the XML security processing
	// model treats DTDs (entity expansion, default attributes) as an
	// attack surface.
	AllowDoctype bool
	// MaxDepth bounds element nesting; 0 means the default of 512.
	MaxDepth int
	// MaxTokens bounds the total token count; 0 means the default of
	// 4 * 1024 * 1024.
	MaxTokens int
}

const (
	defaultMaxDepth  = 512
	defaultMaxTokens = 4 << 20
)

// ErrDoctype is returned when a document contains a DOCTYPE declaration
// and ParseOptions.AllowDoctype is false.
var ErrDoctype = errors.New("xmldom: document type declarations are not allowed")

// Parse reads an XML document with default options.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithOptions(r, ParseOptions{})
}

// ParseString parses an XML document from a string with default options.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseBytes parses an XML document from a byte slice with default
// options.
func ParseBytes(b []byte) (*Document, error) {
	return Parse(bytes.NewReader(b))
}

// ParseWithOptions reads an XML document using the raw tokenizer of
// encoding/xml so that namespace prefixes are preserved exactly as
// written. Well-formedness that the raw tokenizer does not enforce
// (matching end tags, single document element) is enforced here.
func ParseWithOptions(r io.Reader, opts ParseOptions) (*Document, error) {
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = defaultMaxDepth
	}
	maxTokens := opts.MaxTokens
	if maxTokens <= 0 {
		maxTokens = defaultMaxTokens
	}

	dec := xml.NewDecoder(r)
	dec.Strict = true

	doc := &Document{}
	var stack []*Element
	tokens := 0
	sawRoot := false

	for {
		tok, err := dec.RawToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: parse: %w", err)
		}
		tokens++
		if tokens > maxTokens {
			return nil, fmt.Errorf("xmldom: parse: token limit %d exceeded", maxTokens)
		}

		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) == 0 && sawRoot {
				return nil, errors.New("xmldom: parse: multiple document elements")
			}
			if len(stack) >= maxDepth {
				return nil, fmt.Errorf("xmldom: parse: nesting depth limit %d exceeded", maxDepth)
			}
			e := &Element{Prefix: t.Name.Space, Local: t.Name.Local}
			for _, a := range t.Attr {
				e.Attrs = append(e.Attrs, Attr{Prefix: a.Name.Space, Local: a.Name.Local, Value: a.Value})
			}
			if err := checkDuplicateAttrs(e); err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				doc.Children = append(doc.Children, e)
				sawRoot = true
			} else {
				stack[len(stack)-1].AppendChild(e)
			}
			stack = append(stack, e)

		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldom: parse: unexpected end tag </%s>", rawName(t.Name))
			}
			top := stack[len(stack)-1]
			if top.Prefix != t.Name.Space || top.Local != t.Name.Local {
				return nil, fmt.Errorf("xmldom: parse: end tag </%s> does not match <%s>", rawName(t.Name), top.Name())
			}
			stack = stack[:len(stack)-1]

		case xml.CharData:
			if len(stack) == 0 {
				if len(bytes.TrimSpace(t)) > 0 {
					return nil, errors.New("xmldom: parse: character data outside document element")
				}
				continue
			}
			parent := stack[len(stack)-1]
			// Merge adjacent character data (e.g. around CDATA
			// boundaries or entity references) into one node so the
			// tree has a normal form.
			if n := len(parent.Children); n > 0 {
				if prev, ok := parent.Children[n-1].(*Text); ok {
					prev.Data += string(t)
					continue
				}
			}
			parent.AppendChild(&Text{Data: string(t)})

		case xml.Comment:
			c := &Comment{Data: string(t)}
			if len(stack) == 0 {
				doc.Children = append(doc.Children, c)
			} else {
				stack[len(stack)-1].AppendChild(c)
			}

		case xml.ProcInst:
			if t.Target == "xml" {
				// The XML declaration is not part of the data model.
				continue
			}
			pi := &ProcInst{Target: t.Target, Data: string(t.Inst)}
			if len(stack) == 0 {
				doc.Children = append(doc.Children, pi)
			} else {
				stack[len(stack)-1].AppendChild(pi)
			}

		case xml.Directive:
			if !opts.AllowDoctype {
				return nil, ErrDoctype
			}
			// Permitted doctypes are not retained in the tree.
		}
	}

	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldom: parse: unclosed element <%s>", stack[len(stack)-1].Name())
	}
	if !sawRoot {
		return nil, errors.New("xmldom: parse: no document element")
	}
	return doc, nil
}

func rawName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return n.Space + ":" + n.Local
}

// checkDuplicateAttrs rejects repeated attribute names, which the raw
// tokenizer does not police.
func checkDuplicateAttrs(e *Element) error {
	if len(e.Attrs) < 2 {
		return nil
	}
	seen := make(map[string]struct{}, len(e.Attrs))
	for _, a := range e.Attrs {
		k := a.Prefix + ":" + a.Local
		if _, dup := seen[k]; dup {
			return fmt.Errorf("xmldom: parse: duplicate attribute %q on <%s>", a.Name(), e.Name())
		}
		seen[k] = struct{}{}
	}
	return nil
}
