package xmldom

import (
	"fmt"
	"strings"
)

// Lightweight path queries and Id-based dereferencing. The path language
// is a small subset of XPath abbreviated syntax sufficient for the
// security stack and the disc content model:
//
//	a/b/c        child steps by local name (namespace-agnostic)
//	a/*/c        wildcard step
//	a//c         descendant-or-self step
//	a[n]         1-based positional predicate
//	a[@k]        attribute-presence predicate
//	a[@k='v']    attribute-value predicate
//
// Steps match on local names only; the callers in this repository resolve
// namespaces explicitly where they matter.

type pathStep struct {
	name       string // local name or "*"
	descend    bool   // true for the // axis
	pos        int    // 1-based position, 0 when unused
	attrKey    string
	attrVal    string
	hasAttrVal bool
}

func parsePath(path string) ([]pathStep, error) {
	if path == "" {
		return nil, fmt.Errorf("xmldom: empty path")
	}
	var steps []pathStep
	descendNext := false
	for i, raw := range strings.Split(path, "/") {
		if raw == "" {
			if i == 0 {
				// Leading "/" is tolerated (absolute path).
				continue
			}
			descendNext = true
			continue
		}
		st := pathStep{descend: descendNext}
		descendNext = false
		name := raw
		if i := strings.IndexByte(raw, '['); i >= 0 {
			if !strings.HasSuffix(raw, "]") {
				return nil, fmt.Errorf("xmldom: malformed predicate in step %q", raw)
			}
			pred := raw[i+1 : len(raw)-1]
			name = raw[:i]
			if err := parsePredicate(pred, &st); err != nil {
				return nil, err
			}
		}
		if name == "" {
			return nil, fmt.Errorf("xmldom: empty step in path %q", path)
		}
		st.name = name
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("xmldom: path %q has no steps", path)
	}
	return steps, nil
}

func parsePredicate(pred string, st *pathStep) error {
	if pred == "" {
		return fmt.Errorf("xmldom: empty predicate")
	}
	if pred[0] == '@' {
		body := pred[1:]
		if eq := strings.IndexByte(body, '='); eq >= 0 {
			val := body[eq+1:]
			if len(val) < 2 || (val[0] != '\'' && val[0] != '"') || val[len(val)-1] != val[0] {
				return fmt.Errorf("xmldom: malformed attribute value in predicate %q", pred)
			}
			st.attrKey = body[:eq]
			st.attrVal = val[1 : len(val)-1]
			st.hasAttrVal = true
			return nil
		}
		st.attrKey = body
		return nil
	}
	n := 0
	for i := 0; i < len(pred); i++ {
		c := pred[i]
		if c < '0' || c > '9' {
			return fmt.Errorf("xmldom: unsupported predicate %q", pred)
		}
		n = n*10 + int(c-'0')
	}
	if n < 1 {
		return fmt.Errorf("xmldom: positional predicate must be >= 1")
	}
	st.pos = n
	return nil
}

func (st pathStep) matches(e *Element) bool {
	if st.name != "*" && e.Local != st.name {
		return false
	}
	if st.attrKey != "" {
		v, ok := e.Attr(st.attrKey)
		if !ok {
			return false
		}
		if st.hasAttrVal && v != st.attrVal {
			return false
		}
	}
	return true
}

// FindAll returns all elements under e (children and, for // steps,
// descendants) matching the path. The first step applies to e's children.
func (e *Element) FindAll(path string) ([]*Element, error) {
	steps, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	current := []*Element{e}
	for _, st := range steps {
		var next []*Element
		for _, ctx := range current {
			var pool []*Element
			if st.descend {
				pool = append(pool, ctx)
				pool = append(pool, ctx.Descendants()...)
			} else {
				pool = ctx.ChildElements()
			}
			hits := 0
			for _, cand := range pool {
				if !st.matches(cand) {
					continue
				}
				hits++
				if st.pos != 0 && hits != st.pos {
					continue
				}
				next = append(next, cand)
			}
		}
		current = dedupeElements(next)
		if len(current) == 0 {
			return nil, nil
		}
	}
	return current, nil
}

// Find returns the first element matching the path, or nil if none does.
func (e *Element) Find(path string) (*Element, error) {
	all, err := e.FindAll(path)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	return all[0], nil
}

// MustFind is Find that panics on a malformed path and returns nil when
// no element matches. Intended for static paths in this repository.
func (e *Element) MustFind(path string) *Element {
	el, err := e.Find(path)
	if err != nil {
		panic(err)
	}
	return el
}

func dedupeElements(in []*Element) []*Element {
	if len(in) < 2 {
		return in
	}
	seen := make(map[*Element]struct{}, len(in))
	out := in[:0]
	for _, e := range in {
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// IDAttributeNames lists attribute local names treated as element
// identifiers for fragment dereferencing, in priority order. This mirrors
// the attributes used by XML-DSig ("Id"), XML-Enc ("Id") and common
// document vocabularies.
var IDAttributeNames = []string{"Id", "ID", "id", "xml:id"}

// ElementByID searches the subtree rooted at e (inclusive) for an element
// carrying an identifier attribute equal to id. Returns nil when not
// found.
func (e *Element) ElementByID(id string) *Element {
	var found *Element
	e.Walk(func(n Node) bool {
		if found != nil {
			return false
		}
		el, ok := n.(*Element)
		if !ok {
			return true
		}
		for _, name := range IDAttributeNames {
			if v, ok := el.Attr(name); ok && v == id {
				found = el
				return false
			}
		}
		return true
	})
	return found
}

// ElementByID resolves an identifier over the whole document.
func (d *Document) ElementByID(id string) *Element {
	root := d.Root()
	if root == nil {
		return nil
	}
	return root.ElementByID(id)
}
