package xmldom

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Serialization. Output preserves the lexical content of the tree
// (prefixes, attribute order, comments, PIs). Character escaping follows
// XML 1.0: text escapes & < > (> for robustness against "]]>" sequences),
// attribute values escape & < " plus tab/CR/LF as character references so
// round-trips survive attribute-value normalization.

// WriteTo serializes the document, prefixed by an XML declaration.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if _, err := io.WriteString(cw, xmlDecl); err != nil {
		return cw.n, err
	}
	for _, c := range d.Children {
		if err := writeNode(cw, c); err != nil {
			return cw.n, err
		}
	}
	if _, err := io.WriteString(cw, "\n"); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

const xmlDecl = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"

// Bytes serializes the document to a byte slice.
func (d *Document) Bytes() []byte {
	var buf bytes.Buffer
	d.WriteTo(&buf) //nolint:errcheck // bytes.Buffer cannot fail
	return buf.Bytes()
}

// String serializes the document.
func (d *Document) String() string {
	return string(d.Bytes())
}

// WriteTo serializes the element subtree without an XML declaration.
func (e *Element) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	err := writeNode(cw, e)
	return cw.n, err
}

// Bytes serializes the element subtree.
func (e *Element) Bytes() []byte {
	var buf bytes.Buffer
	writeNode(&buf, e) //nolint:errcheck // bytes.Buffer cannot fail
	return buf.Bytes()
}

// String serializes the element subtree.
func (e *Element) String() string {
	return string(e.Bytes())
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeNode(w io.Writer, n Node) error {
	switch t := n.(type) {
	case *Element:
		return writeElement(w, t)
	case *Text:
		return writeEscapedText(w, t.Data)
	case *Comment:
		if strings.Contains(t.Data, "--") {
			return fmt.Errorf("xmldom: comment contains \"--\": %.40q", t.Data)
		}
		_, err := fmt.Fprintf(w, "<!--%s-->", t.Data)
		return err
	case *ProcInst:
		if strings.Contains(t.Data, "?>") {
			return fmt.Errorf("xmldom: processing instruction contains \"?>\": %.40q", t.Data)
		}
		if t.Data == "" {
			_, err := fmt.Fprintf(w, "<?%s?>", t.Target)
			return err
		}
		_, err := fmt.Fprintf(w, "<?%s %s?>", t.Target, t.Data)
		return err
	case *Document:
		for _, c := range t.Children {
			if err := writeNode(w, c); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("xmldom: cannot serialize %T", n)
	}
}

func writeElement(w io.Writer, e *Element) error {
	if _, err := io.WriteString(w, "<"+e.Name()); err != nil {
		return err
	}
	for _, a := range e.Attrs {
		if _, err := io.WriteString(w, " "+a.Name()+"=\""); err != nil {
			return err
		}
		if err := writeEscapedAttr(w, a.Value); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\""); err != nil {
			return err
		}
	}
	if len(e.Children) == 0 {
		_, err := io.WriteString(w, "/>")
		return err
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	for _, c := range e.Children {
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</"+e.Name()+">")
	return err
}

func writeEscapedText(w io.Writer, s string) error {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '\r':
			rep = "&#xD;"
		default:
			continue
		}
		if _, err := io.WriteString(w, s[last:i]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, rep); err != nil {
			return err
		}
		last = i + 1
	}
	_, err := io.WriteString(w, s[last:])
	return err
}

func writeEscapedAttr(w io.Writer, s string) error {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '"':
			rep = "&quot;"
		case '\t':
			rep = "&#x9;"
		case '\n':
			rep = "&#xA;"
		case '\r':
			rep = "&#xD;"
		default:
			continue
		}
		if _, err := io.WriteString(w, s[last:i]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, rep); err != nil {
			return err
		}
		last = i + 1
	}
	_, err := io.WriteString(w, s[last:])
	return err
}
