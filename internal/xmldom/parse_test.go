package xmldom

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	return doc
}

func TestParseSimpleElement(t *testing.T) {
	doc := mustParse(t, `<root a="1" b="two">hello</root>`)
	root := doc.Root()
	if root == nil {
		t.Fatal("no root element")
	}
	if root.Local != "root" || root.Prefix != "" {
		t.Errorf("root name = %q prefix %q", root.Local, root.Prefix)
	}
	if got := root.AttrValue("a"); got != "1" {
		t.Errorf("attr a = %q, want 1", got)
	}
	if got := root.AttrValue("b"); got != "two" {
		t.Errorf("attr b = %q, want two", got)
	}
	if got := root.Text(); got != "hello" {
		t.Errorf("text = %q, want hello", got)
	}
}

func TestParsePreservesPrefixes(t *testing.T) {
	doc := mustParse(t, `<ds:Signature xmlns:ds="http://www.w3.org/2000/09/xmldsig#"><ds:SignedInfo/></ds:Signature>`)
	root := doc.Root()
	if root.Prefix != "ds" || root.Local != "Signature" {
		t.Fatalf("root = %s:%s", root.Prefix, root.Local)
	}
	if got := root.NamespaceURI(); got != "http://www.w3.org/2000/09/xmldsig#" {
		t.Errorf("namespace = %q", got)
	}
	child := root.FirstChildElement("SignedInfo")
	if child == nil || child.Prefix != "ds" {
		t.Fatalf("child = %+v", child)
	}
	if got := child.NamespaceURI(); got != "http://www.w3.org/2000/09/xmldsig#" {
		t.Errorf("child namespace = %q", got)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	doc := mustParse(t, `<r>a &lt; b &amp; c<![CDATA[ <raw> ]]>&#65;</r>`)
	want := "a < b & c <raw> A"
	if got := doc.Root().Text(); got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
	// Adjacent char data merges into a single node.
	if n := len(doc.Root().Children); n != 1 {
		t.Errorf("children = %d, want 1 merged text node", n)
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!-- top --><?app do-it?><r><!-- in --><?pi data?></r>`)
	if len(doc.Children) != 3 {
		t.Fatalf("top-level children = %d, want 3", len(doc.Children))
	}
	if c, ok := doc.Children[0].(*Comment); !ok || c.Data != " top " {
		t.Errorf("first child = %#v", doc.Children[0])
	}
	if pi, ok := doc.Children[1].(*ProcInst); !ok || pi.Target != "app" {
		t.Errorf("second child = %#v", doc.Children[1])
	}
	r := doc.Root()
	if len(r.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(r.Children))
	}
}

func TestParseRejectsDoctype(t *testing.T) {
	_, err := ParseString(`<!DOCTYPE r [<!ENTITY x "y">]><r>&x;</r>`)
	if err == nil {
		t.Fatal("expected doctype rejection")
	}
}

func TestParseAllowDoctype(t *testing.T) {
	_, err := ParseWithOptions(strings.NewReader(`<!DOCTYPE r><r/>`), ParseOptions{AllowDoctype: true})
	if err != nil {
		t.Fatalf("AllowDoctype parse: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"mismatched end tag", `<a><b></a></b>`},
		{"unclosed", `<a><b>`},
		{"multiple roots", `<a/><b/>`},
		{"text outside root", `<a/>stray`},
		{"duplicate attribute", `<a x="1" x="2"/>`},
		{"empty", ``},
		{"stray end", `</a>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestParseDepthLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 20; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < 20; i++ {
		b.WriteString("</a>")
	}
	_, err := ParseWithOptions(strings.NewReader(b.String()), ParseOptions{MaxDepth: 10})
	if err == nil {
		t.Fatal("expected depth limit error")
	}
	if _, err := ParseWithOptions(strings.NewReader(b.String()), ParseOptions{MaxDepth: 30}); err != nil {
		t.Fatalf("within depth limit: %v", err)
	}
}

func TestParseCRLFNormalization(t *testing.T) {
	doc := mustParse(t, "<r>line1\r\nline2\rline3</r>")
	want := "line1\nline2\nline3"
	if got := doc.Root().Text(); got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []string{
		`<r/>`,
		`<r a="1"/>`,
		`<a:r xmlns:a="urn:x" a:k="v"><c>text</c></a:r>`,
		`<r>&amp;&lt;&gt;</r>`,
		`<r att="a&quot;b&#x9;c"/>`,
		`<r><!-- c --><?pi d?><k/></r>`,
	}
	for _, in := range cases {
		doc := mustParse(t, in)
		out := doc.Root().String()
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse %q -> %q: %v", in, out, err)
		}
		out2 := doc2.Root().String()
		if out != out2 {
			t.Errorf("round trip unstable: %q -> %q -> %q", in, out, out2)
		}
	}
}

func TestSerializeEscaping(t *testing.T) {
	e := NewElement("r")
	e.SetAttr("a", "x\"y<z&\n\t")
	e.AddText("a<b>&c\r")
	got := e.String()
	want := `<r a="x&quot;y&lt;z&amp;&#xA;&#x9;">a&lt;b&gt;&amp;c&#xD;</r>`
	if got != want {
		t.Errorf("serialize = %q, want %q", got, want)
	}
	// The escaped form must parse back to the same data.
	doc := mustParse(t, got)
	if doc.Root().AttrValue("a") != "x\"y<z&\n\t" {
		t.Errorf("attr round trip = %q", doc.Root().AttrValue("a"))
	}
	if doc.Root().Text() != "a<b>&c\r" {
		t.Errorf("text round trip = %q", doc.Root().Text())
	}
}

func TestSerializeEmptyElement(t *testing.T) {
	e := NewElement("empty")
	if got := e.String(); got != "<empty/>" {
		t.Errorf("empty element = %q", got)
	}
	e.AddText("")
	if got := e.String(); got != "<empty></empty>" {
		t.Errorf("element with empty text node = %q", got)
	}
}

func TestDocumentSerializeHasDeclaration(t *testing.T) {
	doc := mustParse(t, `<r/>`)
	s := doc.String()
	if !strings.HasPrefix(s, `<?xml version="1.0" encoding="UTF-8"?>`) {
		t.Errorf("missing XML declaration: %q", s)
	}
}
