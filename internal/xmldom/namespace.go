package xmldom

// Namespace resolution over the element tree. Namespace declarations are
// stored as ordinary attributes (xmlns="..." and xmlns:p="..."); the
// helpers here resolve prefixes by walking toward the document root, per
// Namespaces in XML 1.0.

// NamespaceURI resolves the element's own namespace from its prefix.
func (e *Element) NamespaceURI() string {
	return e.ResolvePrefix(e.Prefix)
}

// ResolvePrefix resolves a namespace prefix in the context of e, walking
// ancestor elements. The "xml" and "xmlns" prefixes resolve to their fixed
// URIs. An unbound prefix (including the default namespace when no
// xmlns="..." is in scope) resolves to "".
func (e *Element) ResolvePrefix(prefix string) string {
	switch prefix {
	case "xml":
		return XMLNamespace
	case "xmlns":
		return XMLNSNamespace
	}
	for cur := e; cur != nil; cur = cur.parent {
		for _, a := range cur.Attrs {
			if !a.IsNamespaceDecl() {
				continue
			}
			if a.DeclaredPrefix() == prefix {
				return a.Value
			}
		}
	}
	return ""
}

// AttrNamespaceURI resolves the namespace of an attribute on e. Per the
// namespaces recommendation, unprefixed attributes are in no namespace.
func (e *Element) AttrNamespaceURI(a Attr) string {
	if a.Prefix == "" {
		return ""
	}
	return e.ResolvePrefix(a.Prefix)
}

// LookupPrefix finds a prefix bound to the given namespace URI in the
// scope of e, preferring the innermost binding. It reports whether a
// usable binding was found. A binding is unusable if a nearer declaration
// rebinds the same prefix to a different URI.
func (e *Element) LookupPrefix(uri string) (string, bool) {
	switch uri {
	case XMLNamespace:
		return "xml", true
	case XMLNSNamespace:
		return "xmlns", true
	}
	shadowed := map[string]bool{}
	for cur := e; cur != nil; cur = cur.parent {
		for _, a := range cur.Attrs {
			if !a.IsNamespaceDecl() {
				continue
			}
			p := a.DeclaredPrefix()
			if a.Value == uri && !shadowed[p] {
				return p, true
			}
			shadowed[p] = true
		}
	}
	return "", false
}

// InScopeNamespaces returns the namespace bindings visible at e as a map
// from prefix to URI. The default namespace appears under the "" key only
// when bound to a non-empty URI. The fixed xml binding is included.
func (e *Element) InScopeNamespaces() map[string]string {
	out := map[string]string{"xml": XMLNamespace}
	seen := map[string]bool{}
	for cur := e; cur != nil; cur = cur.parent {
		for _, a := range cur.Attrs {
			if !a.IsNamespaceDecl() {
				continue
			}
			p := a.DeclaredPrefix()
			if seen[p] {
				continue
			}
			seen[p] = true
			if a.Value != "" {
				out[p] = a.Value
			}
		}
	}
	return out
}

// DeclareNamespace adds a namespace declaration on e binding prefix to
// uri. An empty prefix declares the default namespace. Returns e.
func (e *Element) DeclareNamespace(prefix, uri string) *Element {
	if prefix == "" {
		return e.SetAttr("xmlns", uri)
	}
	return e.SetAttr("xmlns:"+prefix, uri)
}

// EnsurePrefix returns a prefix bound to uri at e, declaring preferred on
// e if no usable binding exists. If preferred is already bound to a
// different URI in scope, a numbered variant is used instead.
func (e *Element) EnsurePrefix(uri, preferred string) string {
	if p, ok := e.LookupPrefix(uri); ok {
		return p
	}
	in := e.InScopeNamespaces()
	candidate := preferred
	for i := 2; ; i++ {
		if bound, taken := in[candidate]; !taken || bound == uri {
			break
		}
		candidate = preferred + "-" + itoa(i)
	}
	e.DeclareNamespace(candidate, uri)
	return candidate
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
