package xmldom

import (
	"io"
	"testing"
	"testing/quick"
)

func TestTreeManipulation(t *testing.T) {
	root := NewElement("root")
	a := root.CreateChild("a")
	b := root.CreateChild("b")
	c := root.CreateChild("c")

	if got := len(root.ChildElements()); got != 3 {
		t.Fatalf("children = %d, want 3", got)
	}
	if a.ParentElement() != root {
		t.Error("a parent not root")
	}

	// Move b to front.
	root.InsertChildAt(0, b)
	if root.ChildElements()[0] != b {
		t.Error("InsertChildAt did not move b to front")
	}
	if got := len(root.ChildElements()); got != 3 {
		t.Errorf("children after move = %d, want 3", got)
	}

	// Remove.
	if !root.RemoveChild(c) {
		t.Error("RemoveChild(c) = false")
	}
	if c.ParentElement() != nil {
		t.Error("removed child still has parent")
	}
	if root.RemoveChild(c) {
		t.Error("second RemoveChild(c) = true")
	}

	// Replace.
	d := NewElement("d")
	if !root.ReplaceChild(a, d) {
		t.Error("ReplaceChild(a, d) = false")
	}
	if a.ParentElement() != nil || d.ParentElement() != root {
		t.Error("ReplaceChild parents wrong")
	}

	// AppendChild reparents.
	d.AppendChild(b)
	if b.ParentElement() != d {
		t.Error("b not reparented to d")
	}
	if root.ChildIndex(b) != -1 {
		t.Error("b still indexed under root")
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	doc := mustParse(t, `<r a="1"><c><!-- x -->t</c></r>`)
	root := doc.Root()
	clone := root.Clone()
	if clone.ParentElement() != nil {
		t.Error("clone has parent")
	}
	clone.SetAttr("a", "2")
	clone.FirstChildElement("c").SetText("changed")
	if root.AttrValue("a") != "1" {
		t.Error("clone mutation leaked into original attr")
	}
	if root.FirstChildElement("c").Text() != "t" {
		t.Error("clone mutation leaked into original text")
	}
	if clone.String() == root.String() {
		t.Error("clone should differ after mutation")
	}
}

func TestAttrHelpers(t *testing.T) {
	e := NewElement("e")
	e.SetAttr("k", "v1")
	e.SetAttr("k", "v2")
	if len(e.Attrs) != 1 || e.AttrValue("k") != "v2" {
		t.Errorf("SetAttr replace failed: %+v", e.Attrs)
	}
	if !e.RemoveAttr("k") {
		t.Error("RemoveAttr = false")
	}
	if _, ok := e.Attr("k"); ok {
		t.Error("attr still present after removal")
	}
	if e.RemoveAttr("k") {
		t.Error("second RemoveAttr = true")
	}
}

func TestNamespaceResolution(t *testing.T) {
	doc := mustParse(t, `<a xmlns="urn:def" xmlns:p="urn:p"><p:b><c/><d xmlns="" xmlns:p="urn:p2"><p:e/></d></p:b></a>`)
	a := doc.Root()
	b := a.FirstChildElement("b")
	c := b.FirstChildElement("c")
	d := b.FirstChildElement("d")
	e := d.FirstChildElement("e")

	if got := a.NamespaceURI(); got != "urn:def" {
		t.Errorf("a ns = %q", got)
	}
	if got := b.NamespaceURI(); got != "urn:p" {
		t.Errorf("b ns = %q", got)
	}
	if got := c.NamespaceURI(); got != "urn:def" {
		t.Errorf("c ns = %q (default inherits)", got)
	}
	if got := d.NamespaceURI(); got != "" {
		t.Errorf("d ns = %q (default unbound)", got)
	}
	if got := e.NamespaceURI(); got != "urn:p2" {
		t.Errorf("e ns = %q (rebound prefix)", got)
	}
	if got := e.ResolvePrefix("xml"); got != XMLNamespace {
		t.Errorf("xml prefix = %q", got)
	}
}

func TestLookupPrefixShadowing(t *testing.T) {
	doc := mustParse(t, `<a xmlns:p="urn:outer"><b xmlns:p="urn:inner"><c/></b></a>`)
	c := doc.Root().FirstChildElement("b").FirstChildElement("c")
	if p, ok := c.LookupPrefix("urn:inner"); !ok || p != "p" {
		t.Errorf("LookupPrefix(inner) = %q, %v", p, ok)
	}
	// urn:outer is shadowed by the inner rebinding of p.
	if p, ok := c.LookupPrefix("urn:outer"); ok {
		t.Errorf("LookupPrefix(outer) = %q, want unusable", p)
	}
}

func TestInScopeNamespaces(t *testing.T) {
	doc := mustParse(t, `<a xmlns="urn:d" xmlns:p="urn:p"><b xmlns:q="urn:q" xmlns=""><c/></b></a>`)
	c := doc.Root().FirstChildElement("b").FirstChildElement("c")
	in := c.InScopeNamespaces()
	if in["p"] != "urn:p" || in["q"] != "urn:q" {
		t.Errorf("in-scope = %v", in)
	}
	if _, ok := in[""]; ok {
		t.Errorf("default ns should be unbound at c: %v", in)
	}
	if in["xml"] != XMLNamespace {
		t.Errorf("xml binding missing: %v", in)
	}
}

func TestEnsurePrefix(t *testing.T) {
	e := NewElement("r")
	p := e.EnsurePrefix("urn:x", "x")
	if p != "x" {
		t.Errorf("EnsurePrefix = %q", p)
	}
	if got := e.ResolvePrefix("x"); got != "urn:x" {
		t.Errorf("declared ns = %q", got)
	}
	// Second call reuses the declaration.
	if p2 := e.EnsurePrefix("urn:x", "x"); p2 != "x" {
		t.Errorf("second EnsurePrefix = %q", p2)
	}
	if n := len(e.Attrs); n != 1 {
		t.Errorf("attrs = %d, want 1", n)
	}
	// Conflicting preferred prefix gets a variant.
	e2 := NewElement("r")
	e2.DeclareNamespace("x", "urn:taken")
	p3 := e2.EnsurePrefix("urn:other", "x")
	if p3 == "x" {
		t.Error("EnsurePrefix reused conflicting prefix")
	}
	if got := e2.ResolvePrefix(p3); got != "urn:other" {
		t.Errorf("variant prefix resolves to %q", got)
	}
}

func TestElementByID(t *testing.T) {
	doc := mustParse(t, `<r><a Id="one"/><b><c ID="two"/><d id="three"/></b></r>`)
	for _, id := range []string{"one", "two", "three"} {
		if doc.ElementByID(id) == nil {
			t.Errorf("ElementByID(%q) = nil", id)
		}
	}
	if doc.ElementByID("missing") != nil {
		t.Error("ElementByID(missing) != nil")
	}
	if el := doc.ElementByID("two"); el.Local != "c" {
		t.Errorf("ElementByID(two) = %s", el.Local)
	}
}

func TestFindPaths(t *testing.T) {
	doc := mustParse(t, `<r><a k="1"><b/><b x="y"/></a><a k="2"><c><b deep="yes"/></c></a></r>`)
	r := doc.Root()

	all, err := r.FindAll("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("a/b = %d matches, want 2", len(all))
	}

	all, err = r.FindAll("//b")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("//b = %d matches, want 3", len(all))
	}

	el, err := r.Find("a[@k='2']/c/b")
	if err != nil {
		t.Fatal(err)
	}
	if el == nil || el.AttrValue("deep") != "yes" {
		t.Errorf("predicate path = %+v", el)
	}

	el, err = r.Find("a[2]")
	if err != nil {
		t.Fatal(err)
	}
	if el == nil || el.AttrValue("k") != "2" {
		t.Errorf("positional = %+v", el)
	}

	el, err = r.Find("a/b[@x]")
	if err != nil {
		t.Fatal(err)
	}
	if el == nil || el.AttrValue("x") != "y" {
		t.Errorf("attr-presence = %+v", el)
	}

	if el, _ := r.Find("zzz"); el != nil {
		t.Error("Find(zzz) != nil")
	}
	if _, err := r.Find("a[bad]"); err == nil {
		t.Error("malformed predicate accepted")
	}
	if _, err := r.Find(""); err == nil {
		t.Error("empty path accepted")
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	doc := mustParse(t, `<r><skip><inner/></skip><keep/></r>`)
	var visited []string
	doc.Root().Walk(func(n Node) bool {
		e, ok := n.(*Element)
		if !ok {
			return true
		}
		visited = append(visited, e.Local)
		return e.Local != "skip"
	})
	want := []string{"r", "skip", "keep"}
	if len(visited) != len(want) {
		t.Fatalf("visited = %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited = %v, want %v", visited, want)
		}
	}
}

// Property: serializing any generated text content and parsing it back
// yields the original string.
func TestTextSerializationRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !validXMLChars(s) {
			return true // skip strings XML cannot carry
		}
		e := NewElement("r")
		e.AddText(s)
		doc, err := ParseString(e.String())
		if err != nil {
			return false
		}
		return doc.Root().Text() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: attribute values round-trip through serialization.
func TestAttrSerializationRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !validXMLChars(s) {
			return true
		}
		e := NewElement("r")
		e.SetAttr("a", s)
		doc, err := ParseString(e.String())
		if err != nil {
			return false
		}
		return doc.Root().AttrValue("a") == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// validXMLChars reports whether every rune is a legal XML 1.0 character
// and survives parser line-ending normalization (no bare CR).
func validXMLChars(s string) bool {
	for _, r := range s {
		switch {
		case r == '\t' || r == '\n':
		case r == '\r':
			return false // normalized to \n by the parser
		case r >= 0x20 && r <= 0xD7FF:
		case r >= 0xE000 && r <= 0xFFFD:
		case r >= 0x10000 && r <= 0x10FFFF:
		default:
			return false
		}
	}
	return true
}

func TestSplitQName(t *testing.T) {
	if p, l := SplitQName("ds:Sig"); p != "ds" || l != "Sig" {
		t.Errorf("SplitQName = %q %q", p, l)
	}
	if p, l := SplitQName("Sig"); p != "" || l != "Sig" {
		t.Errorf("SplitQName = %q %q", p, l)
	}
}

func TestDocumentSetRoot(t *testing.T) {
	doc := mustParse(t, `<!-- hdr --><old/>`)
	repl := NewElement("new")
	doc.SetRoot(repl)
	if doc.Root() != repl {
		t.Error("SetRoot did not replace")
	}
	if len(doc.Children) != 2 {
		t.Errorf("children = %d, want comment + root", len(doc.Children))
	}
	empty := &Document{}
	empty.SetRoot(NewElement("r"))
	if empty.Root() == nil {
		t.Error("SetRoot on empty doc failed")
	}
}

func TestSerializeRejectsMalformedCommentsAndPIs(t *testing.T) {
	e := NewElement("r")
	e.AppendChild(&Comment{Data: "a -- b"})
	if _, err := e.WriteTo(io.Discard); err == nil {
		t.Error("comment containing -- serialized")
	}
	e2 := NewElement("r")
	e2.AppendChild(&ProcInst{Target: "pi", Data: "bad ?> data"})
	if _, err := e2.WriteTo(io.Discard); err == nil {
		t.Error("PI containing ?> serialized")
	}
	e3 := NewElement("r")
	e3.AppendChild(&ProcInst{Target: "pi"})
	if got := e3.String(); got != "<r><?pi?></r>" {
		t.Errorf("data-less PI = %q", got)
	}
}

func TestMustFindPanicsOnBadPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFind did not panic on malformed path")
		}
	}()
	NewElement("r").MustFind("a[bad")
}

func TestMustFindReturnsNilOnNoMatch(t *testing.T) {
	if got := NewElement("r").MustFind("missing"); got != nil {
		t.Errorf("MustFind = %v", got)
	}
}

func TestInsertChildAtClamping(t *testing.T) {
	r := NewElement("r")
	a := NewElement("a")
	b := NewElement("b")
	r.InsertChildAt(-5, a) // clamps to 0
	r.InsertChildAt(99, b) // clamps to end
	kids := r.ChildElements()
	if len(kids) != 2 || kids[0] != a || kids[1] != b {
		t.Errorf("children = %v", kids)
	}
}

func TestDocumentCloneNode(t *testing.T) {
	doc := mustParse(t, `<!-- c --><r a="1"/>`)
	clone := doc.CloneNode().(*Document)
	clone.Root().SetAttr("a", "2")
	if doc.Root().AttrValue("a") != "1" {
		t.Error("document clone aliased")
	}
	if len(clone.Children) != 2 {
		t.Errorf("clone children = %d", len(clone.Children))
	}
}

func TestTextNodeParentTracking(t *testing.T) {
	r := NewElement("r")
	txt := &Text{Data: "x"}
	r.AppendChild(txt)
	if txt.ParentElement() != r {
		t.Error("text parent not set")
	}
	r.RemoveChild(txt)
	if txt.ParentElement() != nil {
		t.Error("text parent not cleared")
	}
	c := &Comment{Data: "c"}
	pi := &ProcInst{Target: "t"}
	r.AppendChild(c)
	r.AppendChild(pi)
	if c.ParentElement() != r || pi.ParentElement() != r {
		t.Error("comment/PI parent not set")
	}
}

func TestNodeTypeStrings(t *testing.T) {
	want := map[NodeType]string{
		DocumentNode: "document",
		ElementNode:  "element",
		TextNode:     "text",
		CommentNode:  "comment",
		ProcInstNode: "processing-instruction",
		NodeType(99): "NodeType(99)",
	}
	for nt, s := range want {
		if nt.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(nt), nt.String(), s)
		}
	}
	doc := mustParse(t, `<r><!-- c --><?pi d?>t</r>`)
	if doc.Type() != DocumentNode || doc.Root().Type() != ElementNode {
		t.Error("types wrong")
	}
	for _, n := range doc.Root().Children {
		switch n.(type) {
		case *Comment:
			if n.Type() != CommentNode {
				t.Error("comment type wrong")
			}
		case *ProcInst:
			if n.Type() != ProcInstNode {
				t.Error("PI type wrong")
			}
		case *Text:
			if n.Type() != TextNode {
				t.Error("text type wrong")
			}
		}
	}
}

func TestAttrNamespaceURI(t *testing.T) {
	doc := mustParse(t, `<r xmlns:p="urn:p" p:a="1" b="2" xml:lang="en"/>`)
	r := doc.Root()
	for _, a := range r.Attrs {
		switch a.Name() {
		case "p:a":
			if got := r.AttrNamespaceURI(a); got != "urn:p" {
				t.Errorf("p:a ns = %q", got)
			}
		case "b":
			if got := r.AttrNamespaceURI(a); got != "" {
				t.Errorf("b ns = %q (unprefixed attrs have no namespace)", got)
			}
		case "xml:lang":
			if got := r.AttrNamespaceURI(a); got != XMLNamespace {
				t.Errorf("xml:lang ns = %q", got)
			}
		}
	}
}

func TestNamedChildLookups(t *testing.T) {
	doc := mustParse(t, `<r xmlns:a="urn:a" xmlns:b="urn:b"><a:k/><b:k/><k/></r>`)
	r := doc.Root()
	if got := len(r.ChildElementsNamed("urn:a", "k")); got != 1 {
		t.Errorf("urn:a k count = %d", got)
	}
	if got := len(r.ChildElementsNamed("", "k")); got != 3 {
		t.Errorf("any-ns k count = %d", got)
	}
	if el := r.FirstChildNamed("urn:b", "k"); el == nil || el.Prefix != "b" {
		t.Errorf("FirstChildNamed(urn:b) = %+v", el)
	}
	if el := r.FirstChildNamed("urn:zzz", "k"); el != nil {
		t.Error("unknown namespace matched")
	}
}
