package xmldom

import "discsec/internal/xmlstream"

// StreamBuilder is an xmlstream.Handler that materializes the token
// stream as a Document. It is how ParseWithOptions builds its tree, and
// it composes with other handlers so a single tokenization pass can
// build the DOM while, say, incremental canonicalization digests the
// same tokens (the verification library's single-pass cold open).
//
// Well-formedness and security limits are enforced by xmlstream.Parse
// before tokens reach the builder, so the builder itself cannot fail.
type StreamBuilder struct {
	doc   *Document
	stack []*Element
}

// NewStreamBuilder returns a builder for one document.
func NewStreamBuilder() *StreamBuilder {
	return &StreamBuilder{doc: &Document{}}
}

// Document returns the built tree. Valid after a successful
// xmlstream.Parse pass.
func (b *StreamBuilder) Document() *Document { return b.doc }

// StartElement implements xmlstream.Handler.
func (b *StreamBuilder) StartElement(prefix, local string, attrs []xmlstream.Attr) error {
	e := &Element{Prefix: prefix, Local: local}
	if len(attrs) > 0 {
		e.Attrs = make([]Attr, len(attrs))
		for i, a := range attrs {
			e.Attrs[i] = Attr{Prefix: a.Prefix, Local: a.Local, Value: a.Value}
		}
	}
	if len(b.stack) == 0 {
		b.doc.Children = append(b.doc.Children, e)
	} else {
		b.stack[len(b.stack)-1].AppendChild(e)
	}
	b.stack = append(b.stack, e)
	return nil
}

// EndElement implements xmlstream.Handler.
func (b *StreamBuilder) EndElement(prefix, local string) error {
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

// Text implements xmlstream.Handler. Adjacent character data chunks
// (around CDATA boundaries or entity references) merge into one node so
// the tree has a normal form.
func (b *StreamBuilder) Text(data []byte) error {
	parent := b.stack[len(b.stack)-1]
	if n := len(parent.Children); n > 0 {
		if prev, ok := parent.Children[n-1].(*Text); ok {
			prev.Data += string(data)
			return nil
		}
	}
	parent.AppendChild(&Text{Data: string(data)})
	return nil
}

// Comment implements xmlstream.Handler.
func (b *StreamBuilder) Comment(data []byte) error {
	c := &Comment{Data: string(data)}
	if len(b.stack) == 0 {
		b.doc.Children = append(b.doc.Children, c)
	} else {
		b.stack[len(b.stack)-1].AppendChild(c)
	}
	return nil
}

// ProcInst implements xmlstream.Handler.
func (b *StreamBuilder) ProcInst(target string, data []byte) error {
	pi := &ProcInst{Target: target, Data: string(data)}
	if len(b.stack) == 0 {
		b.doc.Children = append(b.doc.Children, pi)
	} else {
		b.stack[len(b.stack)-1].AppendChild(pi)
	}
	return nil
}
