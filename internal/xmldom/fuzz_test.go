package xmldom

import (
	"bytes"
	"testing"
)

// FuzzParse exercises the parser against arbitrary input: it must never
// panic, and any accepted document must serialize to a form the parser
// accepts again with a stable canonical-ish fixpoint.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<r/>`,
		`<a xmlns="urn:d" xmlns:p="urn:p"><p:b k="v">t</p:b><!-- c --><?pi d?></a>`,
		`<r>&amp;&lt;&#65;<![CDATA[x]]></r>`,
		`<a><b></a></b>`,
		`<!DOCTYPE r><r/>`,
		`<r a="1" a="2"/>`,
		"<r>\xff\xfe</r>",
		`<a:b xmlns:a=""/>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ParseBytes(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out1 := doc.Root().Bytes()
		doc2, err := ParseBytes(out1)
		if err != nil {
			t.Fatalf("accepted document did not re-parse: %v\ninput: %q\nserialized: %q", err, data, out1)
		}
		out2 := doc2.Root().Bytes()
		if !bytes.Equal(out1, out2) {
			t.Fatalf("serialization not a fixpoint:\n1: %q\n2: %q", out1, out2)
		}
	})
}
