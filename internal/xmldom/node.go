// Package xmldom implements a namespace-aware XML document object model.
//
// The model preserves the lexical form of the parsed document — element and
// attribute prefixes, attribute order, comments, and processing
// instructions — which is required by Canonical XML and by the XML
// Signature and XML Encryption processing rules built on top of it.
//
// The package is deliberately self-contained: parsing is built over the raw
// tokenizer of encoding/xml, and serialization follows the escaping rules
// of the XML 1.0 recommendation. Higher layers (internal/c14n,
// internal/xmldsig, internal/xmlenc) apply their own canonical output
// rules on top of this tree.
package xmldom

import (
	"fmt"
	"strings"
)

// Well-known namespace URIs used throughout the security stack.
const (
	XMLNamespace   = "http://www.w3.org/XML/1998/namespace"
	XMLNSNamespace = "http://www.w3.org/2000/xmlns/"
)

// NodeType identifies the concrete kind of a Node.
type NodeType int

// Node kinds. DocumentNode is the root container; the remaining kinds can
// appear as children of a Document (comments, PIs, one element) or of an
// Element.
const (
	DocumentNode NodeType = iota + 1
	ElementNode
	TextNode
	CommentNode
	ProcInstNode
)

func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcInstNode:
		return "processing-instruction"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Node is implemented by every member of the document tree.
type Node interface {
	// Type reports the concrete node kind.
	Type() NodeType
	// ParentElement returns the enclosing element, or nil for top-level
	// nodes (direct children of the Document) and detached nodes.
	ParentElement() *Element
	// setParent records the enclosing element; it does not detach the
	// node from a previous parent.
	setParent(*Element)
	// CloneNode returns a deep copy of the node with a nil parent.
	CloneNode() Node
}

// Attr is a single attribute. Namespace declarations (xmlns and xmlns:*)
// are stored as ordinary attributes; helpers on Element distinguish them.
type Attr struct {
	// Prefix is the namespace prefix ("ds" in ds:Id), empty when the
	// attribute name has no prefix.
	Prefix string
	// Local is the local part of the attribute name.
	Local string
	// Value is the attribute value after entity expansion.
	Value string
}

// Name returns the lexical attribute name (prefix:local or local).
func (a Attr) Name() string {
	if a.Prefix == "" {
		return a.Local
	}
	return a.Prefix + ":" + a.Local
}

// IsNamespaceDecl reports whether the attribute declares a namespace
// (xmlns="..." or xmlns:p="...").
func (a Attr) IsNamespaceDecl() bool {
	return (a.Prefix == "" && a.Local == "xmlns") || a.Prefix == "xmlns"
}

// DeclaredPrefix returns the prefix a namespace declaration binds: "" for
// the default namespace declaration, the prefix for xmlns:p. It must only
// be called when IsNamespaceDecl is true.
func (a Attr) DeclaredPrefix() string {
	if a.Prefix == "xmlns" {
		return a.Local
	}
	return ""
}

// Document is the root of a parsed XML document. Children holds the
// document element along with any top-level comments and processing
// instructions, in document order.
type Document struct {
	Children []Node
}

// Type implements Node.
func (d *Document) Type() NodeType { return DocumentNode }

// ParentElement implements Node; a document has no parent.
func (d *Document) ParentElement() *Element { return nil }

func (d *Document) setParent(*Element) {}

// CloneNode returns a deep copy of the document.
func (d *Document) CloneNode() Node { return d.Clone() }

// Clone returns a deep copy of the document.
func (d *Document) Clone() *Document {
	out := &Document{}
	for _, c := range d.Children {
		out.Children = append(out.Children, c.CloneNode())
	}
	return out
}

// Root returns the document element, or nil if the document is empty.
func (d *Document) Root() *Element {
	for _, c := range d.Children {
		if e, ok := c.(*Element); ok {
			return e
		}
	}
	return nil
}

// SetRoot replaces the document element (or appends one if none exists),
// keeping surrounding comments and processing instructions in place.
func (d *Document) SetRoot(e *Element) {
	e.Detach()
	for i, c := range d.Children {
		if _, ok := c.(*Element); ok {
			d.Children[i] = e
			return
		}
	}
	d.Children = append(d.Children, e)
}

// Element is an XML element node.
type Element struct {
	// Prefix is the namespace prefix of the element name, possibly empty.
	Prefix string
	// Local is the local part of the element name.
	Local string
	// Attrs lists the attributes, including namespace declarations, in
	// document order.
	Attrs []Attr
	// Children lists child nodes in document order.
	Children []Node

	parent *Element
}

// NewElement returns a detached element. The name may carry a prefix
// ("ds:Signature").
func NewElement(name string) *Element {
	prefix, local := SplitQName(name)
	return &Element{Prefix: prefix, Local: local}
}

// SplitQName splits a qualified name into prefix and local part.
func SplitQName(name string) (prefix, local string) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// Type implements Node.
func (e *Element) Type() NodeType { return ElementNode }

// ParentElement implements Node.
func (e *Element) ParentElement() *Element { return e.parent }

func (e *Element) setParent(p *Element) { e.parent = p }

// Name returns the lexical element name (prefix:local or local).
func (e *Element) Name() string {
	if e.Prefix == "" {
		return e.Local
	}
	return e.Prefix + ":" + e.Local
}

// CloneNode implements Node.
func (e *Element) CloneNode() Node { return e.Clone() }

// Clone returns a deep copy of the element subtree with a nil parent.
func (e *Element) Clone() *Element {
	out := &Element{Prefix: e.Prefix, Local: e.Local}
	out.Attrs = append([]Attr(nil), e.Attrs...)
	for _, c := range e.Children {
		cc := c.CloneNode()
		cc.setParent(out)
		out.Children = append(out.Children, cc)
	}
	return out
}

// AppendChild adds n as the last child of e, detaching it from any
// previous parent, and returns e for chaining.
func (e *Element) AppendChild(n Node) *Element {
	detach(n)
	n.setParent(e)
	e.Children = append(e.Children, n)
	return e
}

// InsertChildAt inserts n at index i among e's children (clamped to the
// valid range), detaching it from any previous parent.
func (e *Element) InsertChildAt(i int, n Node) {
	detach(n)
	n.setParent(e)
	if i < 0 {
		i = 0
	}
	if i > len(e.Children) {
		i = len(e.Children)
	}
	e.Children = append(e.Children, nil)
	copy(e.Children[i+1:], e.Children[i:])
	e.Children[i] = n
}

// RemoveChild removes n from e's children, returning true if it was
// present. The removed node's parent is cleared.
func (e *Element) RemoveChild(n Node) bool {
	for i, c := range e.Children {
		if c == n {
			e.Children = append(e.Children[:i], e.Children[i+1:]...)
			n.setParent(nil)
			return true
		}
	}
	return false
}

// ReplaceChild substitutes repl for old among e's children, returning true
// if old was present.
func (e *Element) ReplaceChild(old, repl Node) bool {
	for i, c := range e.Children {
		if c == old {
			detach(repl)
			repl.setParent(e)
			e.Children[i] = repl
			old.setParent(nil)
			return true
		}
	}
	return false
}

// Detach removes e from its parent, if any.
func (e *Element) Detach() {
	detach(e)
}

func detach(n Node) {
	p := n.ParentElement()
	if p == nil {
		return
	}
	p.RemoveChild(n)
}

// ChildIndex returns the index of n among e's children, or -1.
func (e *Element) ChildIndex(n Node) int {
	for i, c := range e.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// Attr returns the value of the named attribute (lexical name, possibly
// prefixed) and whether it is present.
func (e *Element) Attr(name string) (string, bool) {
	prefix, local := SplitQName(name)
	for _, a := range e.Attrs {
		if a.Prefix == prefix && a.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue returns the value of the named attribute or "" when absent.
func (e *Element) AttrValue(name string) string {
	v, _ := e.Attr(name)
	return v
}

// SetAttr sets the named attribute, replacing an existing one with the
// same prefix and local part, and returns e for chaining.
func (e *Element) SetAttr(name, value string) *Element {
	prefix, local := SplitQName(name)
	for i, a := range e.Attrs {
		if a.Prefix == prefix && a.Local == local {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Prefix: prefix, Local: local, Value: value})
	return e
}

// RemoveAttr deletes the named attribute, reporting whether it existed.
func (e *Element) RemoveAttr(name string) bool {
	prefix, local := SplitQName(name)
	for i, a := range e.Attrs {
		if a.Prefix == prefix && a.Local == local {
			e.Attrs = append(e.Attrs[:i], e.Attrs[i+1:]...)
			return true
		}
	}
	return false
}

// ChildElements returns the element children in document order.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, c := range e.Children {
		if ce, ok := c.(*Element); ok {
			out = append(out, ce)
		}
	}
	return out
}

// FirstChildElement returns the first child element with the given local
// name (any namespace); an empty name matches any element. Returns nil if
// none matches.
func (e *Element) FirstChildElement(local string) *Element {
	for _, c := range e.Children {
		if ce, ok := c.(*Element); ok && (local == "" || ce.Local == local) {
			return ce
		}
	}
	return nil
}

// ChildElementsNamed returns child elements matching namespace URI and
// local name. An empty ns matches any namespace.
func (e *Element) ChildElementsNamed(ns, local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		ce, ok := c.(*Element)
		if !ok || ce.Local != local {
			continue
		}
		if ns != "" && ce.NamespaceURI() != ns {
			continue
		}
		out = append(out, ce)
	}
	return out
}

// FirstChildNamed returns the first child element matching namespace URI
// and local name, or nil.
func (e *Element) FirstChildNamed(ns, local string) *Element {
	for _, c := range e.Children {
		ce, ok := c.(*Element)
		if !ok || ce.Local != local {
			continue
		}
		if ns != "" && ce.NamespaceURI() != ns {
			continue
		}
		return ce
	}
	return nil
}

// Text returns the concatenation of all directly contained text nodes.
func (e *Element) Text() string {
	var b strings.Builder
	for _, c := range e.Children {
		if t, ok := c.(*Text); ok {
			b.WriteString(t.Data)
		}
	}
	return b.String()
}

// SetText replaces all children with a single text node and returns e.
func (e *Element) SetText(s string) *Element {
	for _, c := range e.Children {
		c.setParent(nil)
	}
	e.Children = e.Children[:0]
	e.AppendChild(&Text{Data: s})
	return e
}

// AddText appends a text node and returns e for chaining.
func (e *Element) AddText(s string) *Element {
	e.AppendChild(&Text{Data: s})
	return e
}

// CreateChild appends a new element with the given (possibly prefixed)
// name and returns the new child.
func (e *Element) CreateChild(name string) *Element {
	c := NewElement(name)
	e.AppendChild(c)
	return c
}

// Walk visits e and every descendant node in document order. If fn
// returns false for an element, its subtree is skipped.
func (e *Element) Walk(fn func(Node) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children {
		if ce, ok := c.(*Element); ok {
			ce.Walk(fn)
		} else {
			fn(c)
		}
	}
}

// Descendants returns all descendant elements (excluding e) in document
// order.
func (e *Element) Descendants() []*Element {
	var out []*Element
	for _, c := range e.Children {
		if ce, ok := c.(*Element); ok {
			out = append(out, ce)
			out = append(out, ce.Descendants()...)
		}
	}
	return out
}

// Text is a character-data node. CDATA sections parse into Text nodes.
type Text struct {
	Data string

	parent *Element
}

// Type implements Node.
func (t *Text) Type() NodeType { return TextNode }

// ParentElement implements Node.
func (t *Text) ParentElement() *Element { return t.parent }

func (t *Text) setParent(p *Element) { t.parent = p }

// CloneNode implements Node.
func (t *Text) CloneNode() Node { return &Text{Data: t.Data} }

// Comment is an XML comment node.
type Comment struct {
	Data string

	parent *Element
}

// Type implements Node.
func (c *Comment) Type() NodeType { return CommentNode }

// ParentElement implements Node.
func (c *Comment) ParentElement() *Element { return c.parent }

func (c *Comment) setParent(p *Element) { c.parent = p }

// CloneNode implements Node.
func (c *Comment) CloneNode() Node { return &Comment{Data: c.Data} }

// ProcInst is a processing-instruction node.
type ProcInst struct {
	Target string
	Data   string

	parent *Element
}

// Type implements Node.
func (p *ProcInst) Type() NodeType { return ProcInstNode }

// ParentElement implements Node.
func (p *ProcInst) ParentElement() *Element { return p.parent }

func (p *ProcInst) setParent(e *Element) { p.parent = e }

// CloneNode implements Node.
func (p *ProcInst) CloneNode() Node { return &ProcInst{Target: p.Target, Data: p.Data} }
