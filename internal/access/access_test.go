package access

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePermissionRequest(t *testing.T) {
	pr, err := ParsePermissionRequestString(`<permissionrequestfile appid="0x4001" orgid="0x0001">
  <permission name="localstorage.write" target="scores/*"/>
  <permission name="graphics.plane"/>
  <permission name="network.connect" target="https://studio.example"/>
</permissionrequestfile>`)
	if err != nil {
		t.Fatal(err)
	}
	if pr.AppID != "0x4001" || pr.OrgID != "0x0001" {
		t.Errorf("ids = %q %q", pr.AppID, pr.OrgID)
	}
	if len(pr.Permissions) != 3 {
		t.Fatalf("permissions = %d", len(pr.Permissions))
	}
	if pr.Permissions[0].Name != PermLocalStorageWrite || pr.Permissions[0].Target != "scores/*" {
		t.Errorf("perm[0] = %+v", pr.Permissions[0])
	}
}

func TestPermissionRequestRoundTrip(t *testing.T) {
	pr := &PermissionRequest{
		AppID: "0x1", OrgID: "0x2",
		Permissions: []Permission{
			{Name: PermGraphicsPlane},
			{Name: PermLocalStorageRead, Target: "save/*"},
		},
	}
	back, err := ParsePermissionRequest(pr.Document())
	if err != nil {
		t.Fatal(err)
	}
	if back.AppID != pr.AppID || len(back.Permissions) != 2 || back.Permissions[1].Target != "save/*" {
		t.Errorf("round trip = %+v", back)
	}
}

func TestParsePermissionRequestErrors(t *testing.T) {
	if _, err := ParsePermissionRequestString(`<wrong/>`); err == nil {
		t.Error("wrong root accepted")
	}
	if _, err := ParsePermissionRequestString(`<permissionrequestfile><permission/></permissionrequestfile>`); err == nil {
		t.Error("nameless permission accepted")
	}
}

func TestGrantSetAllows(t *testing.T) {
	gs := &GrantSet{granted: []Permission{
		{Name: "localstorage.write", Target: "scores/*"},
		{Name: "graphics.plane"},
		{Name: "network.connect", Target: "https://studio.example"},
	}}
	cases := []struct {
		name, target string
		want         bool
	}{
		{"localstorage.write", "scores/high.xml", true},
		{"localstorage.write", "other/high.xml", false},
		{"graphics.plane", "anything", true},
		{"network.connect", "https://studio.example", true},
		{"network.connect", "https://evil.example", false},
		{"returnchannel.dial", "", false},
	}
	for _, tc := range cases {
		if got := gs.Allows(tc.name, tc.target); got != tc.want {
			t.Errorf("Allows(%q, %q) = %v, want %v", tc.name, tc.target, got, tc.want)
		}
	}
}

func playerPolicy() *PDP {
	// Realistic platform policy: verified applications may use storage
	// under their own appid prefix and the graphics plane; network
	// connects only to https; unverified applications get nothing.
	return &PDP{PolicySet: PolicySet{
		ID:        "player-platform",
		Combining: DenyOverrides,
		Policies: []Policy{
			{
				ID:        "require-verification",
				Combining: FirstApplicable,
				Rules: []Rule{{
					ID:     "deny-unverified",
					Effect: EffectDeny,
					Condition: Not{C: Compare{
						Category: CatSubject, Attribute: "verified", Op: OpEquals, Value: "true",
					}},
				}},
			},
			{
				ID:        "storage",
				Combining: FirstApplicable,
				Target: Target{{
					Category: CatAction, Attribute: "name", Op: OpPrefix, Value: "localstorage.",
				}},
				Rules: []Rule{{
					ID:     "own-prefix-only",
					Effect: EffectPermit,
					Condition: Compare{
						Category: CatResource, Attribute: "target", Op: OpGlob, Value: "app-*",
					},
				}},
			},
			{
				ID:        "graphics",
				Combining: FirstApplicable,
				Target: Target{{
					Category: CatAction, Attribute: "name", Op: OpEquals, Value: PermGraphicsPlane,
				}},
				Rules: []Rule{{ID: "allow", Effect: EffectPermit}},
			},
			{
				ID:        "network",
				Combining: FirstApplicable,
				Target: Target{{
					Category: CatAction, Attribute: "name", Op: OpEquals, Value: PermNetworkConnect,
				}},
				Rules: []Rule{{
					ID:     "https-only",
					Effect: EffectPermit,
					Condition: Compare{
						Category: CatResource, Attribute: "target", Op: OpPrefix, Value: "https://",
					},
				}},
			},
		},
	}}
}

func TestEvaluateRequestVerifiedApp(t *testing.T) {
	pdp := playerPolicy()
	pr := &PermissionRequest{
		AppID: "app-77",
		Permissions: []Permission{
			{Name: PermLocalStorageWrite, Target: "app-77/scores"},
			{Name: PermLocalStorageWrite, Target: "other-app/secrets"},
			{Name: PermGraphicsPlane},
			{Name: PermNetworkConnect, Target: "https://studio.example"},
			{Name: PermNetworkConnect, Target: "http://plain.example"},
			{Name: PermReturnChannel},
		},
	}
	gs, err := pdp.EvaluateRequest(pr, map[string]string{"verified": "true"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Granted()) != 3 {
		t.Errorf("granted = %v", gs.Granted())
	}
	if len(gs.Denied()) != 3 {
		t.Errorf("denied = %v", gs.Denied())
	}
	if !gs.Allows(PermLocalStorageWrite, "app-77/scores") {
		t.Error("own storage denied")
	}
	if gs.Allows(PermLocalStorageWrite, "other-app/secrets") {
		t.Error("foreign storage granted")
	}
	if gs.Allows(PermNetworkConnect, "http://plain.example") {
		t.Error("plain http granted")
	}
}

func TestEvaluateRequestUnverifiedAppDeniedEverything(t *testing.T) {
	pdp := playerPolicy()
	pr := &PermissionRequest{
		AppID:       "app-77",
		Permissions: []Permission{{Name: PermGraphicsPlane}, {Name: PermLocalStorageRead, Target: "app-77/x"}},
	}
	gs, err := pdp.EvaluateRequest(pr, map[string]string{"verified": "false"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Granted()) != 0 {
		t.Errorf("unverified app granted: %v", gs.Granted())
	}
}

func TestCombiningAlgorithms(t *testing.T) {
	permitRule := Rule{ID: "p", Effect: EffectPermit}
	denyRule := Rule{ID: "d", Effect: EffectDeny}
	na := Rule{ID: "na", Effect: EffectPermit, Target: Target{{Category: CatAction, Attribute: "name", Op: OpEquals, Value: "never"}}}
	req := &Request{Action: map[string]string{"name": "x"}}

	cases := []struct {
		name  string
		alg   Combining
		rules []Rule
		want  Decision
	}{
		{"deny-overrides deny wins", DenyOverrides, []Rule{permitRule, denyRule}, Deny},
		{"deny-overrides permit", DenyOverrides, []Rule{na, permitRule}, Permit},
		{"deny-overrides all NA", DenyOverrides, []Rule{na}, NotApplicable},
		{"permit-overrides permit wins", PermitOverrides, []Rule{denyRule, permitRule}, Permit},
		{"permit-overrides deny", PermitOverrides, []Rule{na, denyRule}, Deny},
		{"first-applicable takes first", FirstApplicable, []Rule{na, denyRule, permitRule}, Deny},
		{"first-applicable all NA", FirstApplicable, []Rule{na, na}, NotApplicable},
		{"deny-unless-permit permit", DenyUnlessPermit, []Rule{na, permitRule}, Permit},
		{"deny-unless-permit default deny", DenyUnlessPermit, []Rule{na}, Deny},
		{"permit-unless-deny deny", PermitUnlessDeny, []Rule{na, denyRule}, Deny},
		{"permit-unless-deny default permit", PermitUnlessDeny, []Rule{na}, Permit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Policy{Combining: tc.alg, Rules: tc.rules}
			got, err := p.Evaluate(req)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestConditionTree(t *testing.T) {
	req := &Request{
		Subject:     map[string]string{"org": "studio", "trust": "high"},
		Environment: map[string]string{"online": "true"},
	}
	cond := And{
		Compare{Category: CatSubject, Attribute: "org", Op: OpEquals, Value: "studio"},
		Or{
			Compare{Category: CatSubject, Attribute: "trust", Op: OpEquals, Value: "high"},
			Compare{Category: CatSubject, Attribute: "trust", Op: OpEquals, Value: "medium"},
		},
		Not{C: Compare{Category: CatEnvironment, Attribute: "online", Op: OpEquals, Value: "false"}},
		Present{Category: CatEnvironment, Attribute: "online"},
	}
	ok, err := cond.Eval(req)
	if err != nil || !ok {
		t.Errorf("cond = %v, %v", ok, err)
	}
	cond2 := And{cond, Present{Category: CatSubject, Attribute: "missing"}}
	if ok, _ := cond2.Eval(req); ok {
		t.Error("missing attribute evaluated true")
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "anything", true},
		{"app-*", "app-77", true},
		{"app-*", "other", false},
		{"*.xml", "scores.xml", true},
		{"*.xml", "scores.xmlx", false},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "aXXcYYb", false},
		{"exact", "exact", true},
		{"exact", "exactly", false},
	}
	for _, tc := range cases {
		if got := globMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}

// Property: a glob pattern built by inserting '*' anywhere into a string
// matches the original string.
func TestGlobInsertionProperty(t *testing.T) {
	f := func(s string, pos uint8) bool {
		if strings.Contains(s, "*") || len(s) > 40 {
			return true
		}
		p := int(pos) % (len(s) + 1)
		pattern := s[:p] + "*" + s[p:]
		return globMatch(pattern, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolicyXMLRoundTrip(t *testing.T) {
	pdp := playerPolicy()
	text := pdp.PolicySet.Document().String()
	back, err := ParsePolicySetString(text)
	if err != nil {
		t.Fatalf("parse rendered policy: %v\n%s", err, text)
	}
	// Behavioural equivalence: the reparsed policy decides identically
	// on a matrix of requests.
	reqs := []*Request{
		{Subject: map[string]string{"verified": "true"}, Action: map[string]string{"name": PermGraphicsPlane}, Resource: map[string]string{}},
		{Subject: map[string]string{"verified": "false"}, Action: map[string]string{"name": PermGraphicsPlane}, Resource: map[string]string{}},
		{Subject: map[string]string{"verified": "true"}, Action: map[string]string{"name": PermLocalStorageWrite}, Resource: map[string]string{"target": "app-1/x"}},
		{Subject: map[string]string{"verified": "true"}, Action: map[string]string{"name": PermLocalStorageWrite}, Resource: map[string]string{"target": "zzz"}},
		{Subject: map[string]string{"verified": "true"}, Action: map[string]string{"name": PermNetworkConnect}, Resource: map[string]string{"target": "https://ok"}},
		{Subject: map[string]string{"verified": "true"}, Action: map[string]string{"name": PermNetworkConnect}, Resource: map[string]string{"target": "ftp://no"}},
	}
	pdp2 := &PDP{PolicySet: *back}
	for i, req := range reqs {
		d1, err1 := pdp.Decide(req)
		d2, err2 := pdp2.Decide(req)
		if err1 != nil || err2 != nil {
			t.Fatalf("req %d: %v %v", i, err1, err2)
		}
		if d1 != d2 {
			t.Errorf("req %d: original %v, reparsed %v", i, d1, d2)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	bad := []string{
		`<notpolicy/>`,
		`<policyset combining="bogus"/>`,
		`<policyset><policy><rule effect="sideways"/></policy></policyset>`,
		`<policyset><policy><rule><condition><xyzzy/></condition></rule></policy></policyset>`,
		`<policyset><policy><rule><condition><and/><or/></condition></rule></policy></policyset>`,
		`<policyset><target><match category="nowhere" attribute="a"/></target></policyset>`,
		`<policyset><target><match category="subject" op="fuzzy" attribute="a"/></target></policyset>`,
		`<policyset><target><match category="subject" op="equals"/></target></policyset>`,
	}
	for _, s := range bad {
		if _, err := ParsePolicySetString(s); err == nil {
			t.Errorf("accepted: %s", s)
		}
	}
}

func TestDecisionStrings(t *testing.T) {
	if Permit.String() != "Permit" || Deny.String() != "Deny" || NotApplicable.String() != "NotApplicable" || Indeterminate.String() != "Indeterminate" {
		t.Error("decision strings wrong")
	}
	if EffectDeny.String() != "Deny" || EffectPermit.String() != "Permit" {
		t.Error("effect strings wrong")
	}
	for _, c := range []Combining{DenyOverrides, PermitOverrides, FirstApplicable, DenyUnlessPermit, PermitUnlessDeny} {
		back, err := CombiningByName(c.String())
		if err != nil || back != c {
			t.Errorf("combining round trip %v: %v %v", c, back, err)
		}
	}
}

func TestPermissionString(t *testing.T) {
	if got := (Permission{Name: "a.b", Target: "t"}).String(); got != "a.b[t]" {
		t.Errorf("got %q", got)
	}
	if got := (Permission{Name: "a.b"}).String(); got != "a.b" {
		t.Errorf("got %q", got)
	}
}
