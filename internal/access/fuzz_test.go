package access

import (
	"strings"
	"testing"
)

// FuzzParsePolicySet checks the policy decoder against arbitrary input:
// no panics, and accepted policies round-trip behaviourally through
// their XML form for a probe request.
func FuzzParsePolicySet(f *testing.F) {
	f.Add(`<policyset combining="deny-overrides"><policy combining="first-applicable"><rule effect="permit"><condition><compare category="subject" attribute="verified" op="equals" value="true"/></condition></rule></policy></policyset>`)
	f.Add(`<policyset><target><match category="action" attribute="name" op="prefix" value="x"/></target></policyset>`)
	// Entity-like attribute values must survive the round-trip as data.
	f.Add(`<policyset><policy><rule effect="deny"><condition><compare category="subject" attribute="name" op="equals" value="&amp;notanentity; &lt;x&gt; &#38;"/></condition></rule></policy></policyset>`)
	// Deeply nested condition combinators probe evaluator recursion.
	f.Add(`<policyset><policy><rule effect="permit"><condition>` +
		strings.Repeat(`<not><and>`, 24) +
		`<present category="subject" attribute="verified"/>` +
		strings.Repeat(`</and></not>`, 24) +
		`</condition></rule></policy></policyset>`)
	// Doctype declarations must stay rejected (XXE surface).
	f.Add(`<!DOCTYPE policyset [<!ENTITY e "x">]><policyset><target/></policyset>`)
	f.Fuzz(func(t *testing.T, s string) {
		ps, err := ParsePolicySetString(s)
		if err != nil {
			return
		}
		back, err := ParsePolicySetString(ps.Document().String())
		if err != nil {
			t.Fatalf("accepted policy did not round-trip: %v", err)
		}
		probe := &Request{
			Subject: map[string]string{"verified": "true"},
			Action:  map[string]string{"name": "x.y"},
		}
		d1, e1 := (&PDP{PolicySet: *ps}).Decide(probe)
		d2, e2 := (&PDP{PolicySet: *back}).Decide(probe)
		if (e1 == nil) != (e2 == nil) || d1 != d2 {
			t.Fatalf("behaviour changed after round-trip: %v/%v vs %v/%v", d1, e1, d2, e2)
		}
	})
}
