package access

import (
	"errors"
	"fmt"

	"discsec/internal/xmldom"
)

// XML serialization of the XACML-lite policy model, so platform policy
// can be provisioned, stored, and audited as markup like everything else
// in the content chain.

// ParsePolicySet reads a <policyset> document.
func ParsePolicySet(doc *xmldom.Document) (*PolicySet, error) {
	root := doc.Root()
	if root == nil || root.Local != "policyset" {
		return nil, errors.New("access: document element must be <policyset>")
	}
	return parsePolicySetElement(root)
}

// ParsePolicySetString parses a policy set from text.
func ParsePolicySetString(s string) (*PolicySet, error) {
	doc, err := xmldom.ParseString(s)
	if err != nil {
		return nil, err
	}
	return ParsePolicySet(doc)
}

func parsePolicySetElement(el *xmldom.Element) (*PolicySet, error) {
	ps := &PolicySet{ID: el.AttrValue("id")}
	var err error
	if ps.Combining, err = combiningAttr(el); err != nil {
		return nil, err
	}
	if ps.Target, err = parseTarget(el.FirstChildElement("target")); err != nil {
		return nil, err
	}
	for _, pEl := range el.ChildElementsNamed("", "policy") {
		p, err := parsePolicyElement(pEl)
		if err != nil {
			return nil, err
		}
		ps.Policies = append(ps.Policies, *p)
	}
	return ps, nil
}

func parsePolicyElement(el *xmldom.Element) (*Policy, error) {
	p := &Policy{ID: el.AttrValue("id")}
	var err error
	if p.Combining, err = combiningAttr(el); err != nil {
		return nil, err
	}
	if p.Target, err = parseTarget(el.FirstChildElement("target")); err != nil {
		return nil, err
	}
	for _, rEl := range el.ChildElementsNamed("", "rule") {
		r, err := parseRuleElement(rEl)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, *r)
	}
	return p, nil
}

func parseRuleElement(el *xmldom.Element) (*Rule, error) {
	r := &Rule{ID: el.AttrValue("id")}
	switch eff := el.AttrValue("effect"); eff {
	case "permit", "Permit", "":
		r.Effect = EffectPermit
	case "deny", "Deny":
		r.Effect = EffectDeny
	default:
		return nil, fmt.Errorf("access: unknown rule effect %q", eff)
	}
	var err error
	if r.Target, err = parseTarget(el.FirstChildElement("target")); err != nil {
		return nil, err
	}
	if cEl := el.FirstChildElement("condition"); cEl != nil {
		kids := cEl.ChildElements()
		if len(kids) != 1 {
			return nil, errors.New("access: <condition> must contain exactly one expression")
		}
		if r.Condition, err = parseCondition(kids[0]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func combiningAttr(el *xmldom.Element) (Combining, error) {
	s := el.AttrValue("combining")
	if s == "" {
		return DenyOverrides, nil
	}
	return CombiningByName(s)
}

func parseTarget(el *xmldom.Element) (Target, error) {
	if el == nil {
		return nil, nil
	}
	var t Target
	for _, mEl := range el.ChildElementsNamed("", "match") {
		m, err := parseMatch(mEl)
		if err != nil {
			return nil, err
		}
		t = append(t, m)
	}
	return t, nil
}

func parseMatch(el *xmldom.Element) (Match, error) {
	m := Match{
		Category:  Category(el.AttrValue("category")),
		Attribute: el.AttrValue("attribute"),
		Op:        MatchOp(el.AttrValue("op")),
		Value:     el.AttrValue("value"),
	}
	if m.Op == "" {
		m.Op = OpEquals
	}
	switch m.Category {
	case CatSubject, CatResource, CatAction, CatEnvironment:
	default:
		return Match{}, fmt.Errorf("access: unknown match category %q", m.Category)
	}
	if m.Attribute == "" {
		return Match{}, errors.New("access: <match> missing attribute")
	}
	switch m.Op {
	case OpEquals, OpPrefix, OpSuffix, OpContains, OpGlob:
	default:
		return Match{}, fmt.Errorf("access: unknown match op %q", m.Op)
	}
	return m, nil
}

func parseCondition(el *xmldom.Element) (Condition, error) {
	switch el.Local {
	case "and":
		var and And
		for _, k := range el.ChildElements() {
			c, err := parseCondition(k)
			if err != nil {
				return nil, err
			}
			and = append(and, c)
		}
		return and, nil
	case "or":
		var or Or
		for _, k := range el.ChildElements() {
			c, err := parseCondition(k)
			if err != nil {
				return nil, err
			}
			or = append(or, c)
		}
		return or, nil
	case "not":
		kids := el.ChildElements()
		if len(kids) != 1 {
			return nil, errors.New("access: <not> must contain exactly one expression")
		}
		inner, err := parseCondition(kids[0])
		if err != nil {
			return nil, err
		}
		return Not{C: inner}, nil
	case "compare", "match":
		m, err := parseMatch(el)
		if err != nil {
			return nil, err
		}
		return Compare(m), nil
	case "present":
		cat := Category(el.AttrValue("category"))
		switch cat {
		case CatSubject, CatResource, CatAction, CatEnvironment:
		default:
			return nil, fmt.Errorf("access: unknown present category %q", cat)
		}
		return Present{Category: cat, Attribute: el.AttrValue("attribute")}, nil
	default:
		return nil, fmt.Errorf("access: unknown condition element <%s>", el.Local)
	}
}

// Document renders the policy set as XML.
func (ps *PolicySet) Document() *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement("policyset")
	if ps.ID != "" {
		root.SetAttr("id", ps.ID)
	}
	root.SetAttr("combining", ps.Combining.String())
	writeTarget(root, ps.Target)
	for i := range ps.Policies {
		writePolicy(root, &ps.Policies[i])
	}
	doc.SetRoot(root)
	return doc
}

func writePolicy(parent *xmldom.Element, p *Policy) {
	el := parent.CreateChild("policy")
	if p.ID != "" {
		el.SetAttr("id", p.ID)
	}
	el.SetAttr("combining", p.Combining.String())
	writeTarget(el, p.Target)
	for i := range p.Rules {
		writeRule(el, &p.Rules[i])
	}
}

func writeRule(parent *xmldom.Element, r *Rule) {
	el := parent.CreateChild("rule")
	if r.ID != "" {
		el.SetAttr("id", r.ID)
	}
	if r.Effect == EffectDeny {
		el.SetAttr("effect", "deny")
	} else {
		el.SetAttr("effect", "permit")
	}
	writeTarget(el, r.Target)
	if r.Condition != nil {
		cEl := el.CreateChild("condition")
		writeCondition(cEl, r.Condition)
	}
}

func writeTarget(parent *xmldom.Element, t Target) {
	if len(t) == 0 {
		return
	}
	el := parent.CreateChild("target")
	for _, m := range t {
		writeMatch(el, "match", m)
	}
}

func writeMatch(parent *xmldom.Element, name string, m Match) {
	el := parent.CreateChild(name)
	el.SetAttr("category", string(m.Category))
	el.SetAttr("attribute", m.Attribute)
	el.SetAttr("op", string(m.Op))
	el.SetAttr("value", m.Value)
}

func writeCondition(parent *xmldom.Element, c Condition) {
	switch t := c.(type) {
	case And:
		el := parent.CreateChild("and")
		for _, k := range t {
			writeCondition(el, k)
		}
	case Or:
		el := parent.CreateChild("or")
		for _, k := range t {
			writeCondition(el, k)
		}
	case Not:
		el := parent.CreateChild("not")
		writeCondition(el, t.C)
	case Compare:
		writeMatch(parent, "compare", Match(t))
	case Present:
		el := parent.CreateChild("present")
		el.SetAttr("category", string(t.Category))
		el.SetAttr("attribute", t.Attribute)
	}
}
