package access

import (
	"fmt"
	"strings"

	"discsec/internal/obs"
)

// XACML-lite policy model. The vocabulary follows XACML 2.0 (targets,
// rules with effects, conditions, combining algorithms) restricted to
// string attributes, which is all the disc player context needs.

// Decision is the outcome of a policy evaluation.
type Decision int

// XACML decisions.
const (
	NotApplicable Decision = iota
	Permit
	Deny
	Indeterminate
)

func (d Decision) String() string {
	switch d {
	case Permit:
		return "Permit"
	case Deny:
		return "Deny"
	case NotApplicable:
		return "NotApplicable"
	case Indeterminate:
		return "Indeterminate"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Effect is a rule's outcome when it applies.
type Effect int

// Rule effects.
const (
	EffectPermit Effect = iota
	EffectDeny
)

func (e Effect) String() string {
	if e == EffectDeny {
		return "Deny"
	}
	return "Permit"
}

// Combining selects a combining algorithm for rules or policies.
type Combining int

// Combining algorithms. DenyUnlessPermit and PermitUnlessDeny are the
// XACML 3.0 total algorithms (never NotApplicable/Indeterminate).
const (
	DenyOverrides Combining = iota
	PermitOverrides
	FirstApplicable
	DenyUnlessPermit
	PermitUnlessDeny
)

func (c Combining) String() string {
	switch c {
	case DenyOverrides:
		return "deny-overrides"
	case PermitOverrides:
		return "permit-overrides"
	case FirstApplicable:
		return "first-applicable"
	case DenyUnlessPermit:
		return "deny-unless-permit"
	case PermitUnlessDeny:
		return "permit-unless-deny"
	default:
		return fmt.Sprintf("Combining(%d)", int(c))
	}
}

// CombiningByName parses a combining algorithm name.
func CombiningByName(s string) (Combining, error) {
	switch s {
	case "deny-overrides":
		return DenyOverrides, nil
	case "permit-overrides":
		return PermitOverrides, nil
	case "first-applicable":
		return FirstApplicable, nil
	case "deny-unless-permit":
		return DenyUnlessPermit, nil
	case "permit-unless-deny":
		return PermitUnlessDeny, nil
	default:
		return 0, fmt.Errorf("access: unknown combining algorithm %q", s)
	}
}

// Category names an attribute category of the request context.
type Category string

// Request context categories.
const (
	CatSubject     Category = "subject"
	CatResource    Category = "resource"
	CatAction      Category = "action"
	CatEnvironment Category = "environment"
)

// Request is the decision request the player builds per permission: who
// (subject: signer, org, trust level), what (resource: permission target),
// which action (permission name), and environment (network state, disc
// type).
type Request struct {
	Subject     map[string]string
	Resource    map[string]string
	Action      map[string]string
	Environment map[string]string
}

// Attr fetches an attribute from a category; missing values are "".
func (r *Request) Attr(cat Category, name string) (string, bool) {
	var m map[string]string
	switch cat {
	case CatSubject:
		m = r.Subject
	case CatResource:
		m = r.Resource
	case CatAction:
		m = r.Action
	case CatEnvironment:
		m = r.Environment
	}
	v, ok := m[name]
	return v, ok
}

// MatchOp compares an attribute to a literal.
type MatchOp string

// Match operators.
const (
	OpEquals   MatchOp = "equals"
	OpPrefix   MatchOp = "prefix"
	OpSuffix   MatchOp = "suffix"
	OpContains MatchOp = "contains"
	OpGlob     MatchOp = "glob" // '*' wildcards, matched greedily
)

// Match is one attribute test.
type Match struct {
	Category  Category
	Attribute string
	Op        MatchOp
	Value     string
}

// Eval applies the match against the request. A missing attribute never
// matches.
func (m Match) Eval(req *Request) (bool, error) {
	v, ok := req.Attr(m.Category, m.Attribute)
	if !ok {
		return false, nil
	}
	switch m.Op {
	case OpEquals, "":
		return v == m.Value, nil
	case OpPrefix:
		return strings.HasPrefix(v, m.Value), nil
	case OpSuffix:
		return strings.HasSuffix(v, m.Value), nil
	case OpContains:
		return strings.Contains(v, m.Value), nil
	case OpGlob:
		return globMatch(m.Value, v), nil
	default:
		return false, fmt.Errorf("access: unknown match op %q", m.Op)
	}
}

// globMatch matches pattern with '*' wildcards against s.
func globMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// Target is a conjunction of matches; an empty target applies to every
// request.
type Target []Match

// Applies reports whether all matches hold.
func (t Target) Applies(req *Request) (bool, error) {
	for _, m := range t {
		ok, err := m.Eval(req)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Condition is a boolean expression over request attributes.
type Condition interface {
	Eval(req *Request) (bool, error)
}

// And is a conjunction condition.
type And []Condition

// Eval implements Condition.
func (a And) Eval(req *Request) (bool, error) {
	for _, c := range a {
		ok, err := c.Eval(req)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Or is a disjunction condition.
type Or []Condition

// Eval implements Condition.
func (o Or) Eval(req *Request) (bool, error) {
	for _, c := range o {
		ok, err := c.Eval(req)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Not negates a condition.
type Not struct{ C Condition }

// Eval implements Condition.
func (n Not) Eval(req *Request) (bool, error) {
	ok, err := n.C.Eval(req)
	return !ok, err
}

// Compare tests one attribute (a Match used as a condition leaf).
type Compare Match

// Eval implements Condition.
func (c Compare) Eval(req *Request) (bool, error) { return Match(c).Eval(req) }

// Present tests attribute presence.
type Present struct {
	Category  Category
	Attribute string
}

// Eval implements Condition.
func (p Present) Eval(req *Request) (bool, error) {
	_, ok := req.Attr(p.Category, p.Attribute)
	return ok, nil
}

// Rule is one XACML rule.
type Rule struct {
	ID        string
	Effect    Effect
	Target    Target
	Condition Condition
}

// Evaluate returns the rule's contribution for the request.
func (r *Rule) Evaluate(req *Request) (Decision, error) {
	applies, err := r.Target.Applies(req)
	if err != nil {
		return Indeterminate, err
	}
	if !applies {
		return NotApplicable, nil
	}
	if r.Condition != nil {
		ok, err := r.Condition.Eval(req)
		if err != nil {
			return Indeterminate, err
		}
		if !ok {
			return NotApplicable, nil
		}
	}
	if r.Effect == EffectDeny {
		return Deny, nil
	}
	return Permit, nil
}

// Policy groups rules under a target and combining algorithm.
type Policy struct {
	ID        string
	Target    Target
	Combining Combining
	Rules     []Rule
}

// Evaluate combines the rule decisions.
func (p *Policy) Evaluate(req *Request) (Decision, error) {
	applies, err := p.Target.Applies(req)
	if err != nil {
		return Indeterminate, err
	}
	if !applies {
		return NotApplicable, nil
	}
	decisions := make([]Decision, 0, len(p.Rules))
	for i := range p.Rules {
		d, err := p.Rules[i].Evaluate(req)
		if err != nil {
			return Indeterminate, err
		}
		decisions = append(decisions, d)
	}
	return combine(p.Combining, decisions), nil
}

// PolicySet groups policies.
type PolicySet struct {
	ID        string
	Target    Target
	Combining Combining
	Policies  []Policy
}

// Evaluate combines the policy decisions.
func (ps *PolicySet) Evaluate(req *Request) (Decision, error) {
	applies, err := ps.Target.Applies(req)
	if err != nil {
		return Indeterminate, err
	}
	if !applies {
		return NotApplicable, nil
	}
	decisions := make([]Decision, 0, len(ps.Policies))
	for i := range ps.Policies {
		d, err := ps.Policies[i].Evaluate(req)
		if err != nil {
			return Indeterminate, err
		}
		decisions = append(decisions, d)
	}
	return combine(ps.Combining, decisions), nil
}

func combine(alg Combining, ds []Decision) Decision {
	switch alg {
	case DenyOverrides:
		sawPermit := false
		for _, d := range ds {
			switch d {
			case Deny, Indeterminate:
				return Deny
			case Permit:
				sawPermit = true
			}
		}
		if sawPermit {
			return Permit
		}
		return NotApplicable
	case PermitOverrides:
		sawDeny := false
		for _, d := range ds {
			switch d {
			case Permit:
				return Permit
			case Deny, Indeterminate:
				sawDeny = true
			}
		}
		if sawDeny {
			return Deny
		}
		return NotApplicable
	case FirstApplicable:
		for _, d := range ds {
			if d != NotApplicable {
				return d
			}
		}
		return NotApplicable
	case DenyUnlessPermit:
		for _, d := range ds {
			if d == Permit {
				return Permit
			}
		}
		return Deny
	case PermitUnlessDeny:
		for _, d := range ds {
			if d == Deny {
				return Deny
			}
		}
		return Permit
	default:
		return Indeterminate
	}
}

// PDP is the policy decision point the player consults.
type PDP struct {
	PolicySet PolicySet
	// DefaultDecision resolves NotApplicable outcomes; a closed
	// platform uses Deny (the zero value is Deny-biased:
	// NotApplicable maps to Deny unless DefaultPermit is set).
	DefaultPermit bool
	// Recorder, when non-nil, receives one obs.StagePolicy span plus a
	// policy.permit/policy.deny counter tick per decision, and an
	// audit event for every denial.
	Recorder *obs.Recorder
}

// Decide evaluates the request to a final Permit/Deny.
func (pdp *PDP) Decide(req *Request) (Decision, error) {
	sp := pdp.Recorder.Start(obs.StagePolicy)
	d, err := pdp.decide(req)
	sp.End()
	if err != nil {
		pdp.Recorder.Inc("policy.error")
		return d, err
	}
	if d == Permit {
		pdp.Recorder.Inc("policy.permit")
	} else {
		pdp.Recorder.Inc("policy.deny")
		pdp.Recorder.Audit(obs.AuditPolicyDenied, "action=%s target=%s", req.Action["name"], req.Resource["target"])
	}
	return d, nil
}

func (pdp *PDP) decide(req *Request) (Decision, error) {
	d, err := pdp.PolicySet.Evaluate(req)
	if err != nil {
		return Deny, err
	}
	switch d {
	case Permit:
		return Permit, nil
	case Deny, Indeterminate:
		return Deny, nil
	default: // NotApplicable
		if pdp.DefaultPermit {
			return Permit, nil
		}
		return Deny, nil
	}
}

// EvaluateRequest decides every permission in a request file against the
// PDP, building the grant set the player enforces at runtime. Subject and
// environment attributes describe the application's provenance (signer
// identity, verification state).
func (pdp *PDP) EvaluateRequest(pr *PermissionRequest, subject, environment map[string]string) (*GrantSet, error) {
	gs := &GrantSet{}
	for _, perm := range pr.Permissions {
		req := &Request{
			Subject: subject,
			Action:  map[string]string{"name": perm.Name},
			Resource: map[string]string{
				"target": perm.Target,
				"appid":  pr.AppID,
				"orgid":  pr.OrgID,
			},
			Environment: environment,
		}
		d, err := pdp.Decide(req)
		if err != nil {
			return nil, err
		}
		if d == Permit {
			gs.granted = append(gs.granted, perm)
		} else {
			gs.denied = append(gs.denied, perm)
		}
	}
	return gs, nil
}
