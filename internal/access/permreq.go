// Package access implements the access-control mechanisms of the paper's
// §3.1 and §4: MHP-style XML "permission request files" attached to
// interactive applications, and an XACML-lite policy decision point the
// player consults to grant or refuse the requested rights (use of the
// return channel, writing to local storage, access to the graphics
// plane, and so on).
package access

import (
	"errors"
	"fmt"
	"strings"

	"discsec/internal/xmldom"
)

// Well-known permission names used by the player runtime. Content may
// request arbitrary names; these are the ones the reference player
// enforces.
const (
	PermLocalStorageRead  = "localstorage.read"
	PermLocalStorageWrite = "localstorage.write"
	PermNetworkConnect    = "network.connect"
	PermGraphicsPlane     = "graphics.plane"
	PermReturnChannel     = "returnchannel.dial"
	PermMediaSelect       = "media.select"
)

// Permission is one requested (or granted) right, optionally narrowed to
// a target (a storage path, a host, a plane identifier). A "*" target —
// or an empty one — means any target.
type Permission struct {
	Name   string
	Target string
}

// String renders the permission in name[target] form.
func (p Permission) String() string {
	if p.Target == "" || p.Target == "*" {
		return p.Name
	}
	return p.Name + "[" + p.Target + "]"
}

// PermissionRequest is the MHP-style permission request file a content
// creator attaches alongside the application markup (paper §4).
type PermissionRequest struct {
	// AppID identifies the application (MHP uses hex appid).
	AppID string
	// OrgID identifies the organisation.
	OrgID string
	// Permissions lists the requested rights.
	Permissions []Permission
}

// permReqRoot is the document element name of a permission request file.
const permReqRoot = "permissionrequestfile"

// ParsePermissionRequest reads a permission request document:
//
//	<permissionrequestfile appid="0x4001" orgid="0x0001">
//	  <permission name="localstorage.write" target="scores/*"/>
//	  <permission name="graphics.plane"/>
//	</permissionrequestfile>
func ParsePermissionRequest(doc *xmldom.Document) (*PermissionRequest, error) {
	root := doc.Root()
	if root == nil || root.Local != permReqRoot {
		return nil, fmt.Errorf("access: document element must be <%s>", permReqRoot)
	}
	pr := &PermissionRequest{
		AppID: root.AttrValue("appid"),
		OrgID: root.AttrValue("orgid"),
	}
	for _, el := range root.ChildElementsNamed("", "permission") {
		name, ok := el.Attr("name")
		if !ok || name == "" {
			return nil, errors.New("access: <permission> missing name attribute")
		}
		pr.Permissions = append(pr.Permissions, Permission{Name: name, Target: el.AttrValue("target")})
	}
	return pr, nil
}

// ParsePermissionRequestString parses a permission request from text.
func ParsePermissionRequestString(s string) (*PermissionRequest, error) {
	doc, err := xmldom.ParseString(s)
	if err != nil {
		return nil, err
	}
	return ParsePermissionRequest(doc)
}

// Document renders the request as an XML document.
func (pr *PermissionRequest) Document() *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement(permReqRoot)
	if pr.AppID != "" {
		root.SetAttr("appid", pr.AppID)
	}
	if pr.OrgID != "" {
		root.SetAttr("orgid", pr.OrgID)
	}
	for _, p := range pr.Permissions {
		el := root.CreateChild("permission")
		el.SetAttr("name", p.Name)
		if p.Target != "" {
			el.SetAttr("target", p.Target)
		}
	}
	doc.SetRoot(root)
	return doc
}

// GrantSet is the outcome of evaluating a permission request: the rights
// the platform actually conceded.
type GrantSet struct {
	granted []Permission
	denied  []Permission
}

// Granted returns the conceded permissions.
func (g *GrantSet) Granted() []Permission { return append([]Permission(nil), g.granted...) }

// Denied returns the refused permissions.
func (g *GrantSet) Denied() []Permission { return append([]Permission(nil), g.denied...) }

// Allows reports whether an action on a concrete target is covered by a
// granted permission. Grant targets match exactly, by "*", or by a
// trailing-"*" glob ("scores/*").
func (g *GrantSet) Allows(name, target string) bool {
	for _, p := range g.granted {
		if p.Name != name {
			continue
		}
		if targetMatches(p.Target, target) {
			return true
		}
	}
	return false
}

func targetMatches(pattern, target string) bool {
	switch {
	case pattern == "" || pattern == "*":
		return true
	case strings.HasSuffix(pattern, "*"):
		return strings.HasPrefix(target, pattern[:len(pattern)-1])
	default:
		return pattern == target
	}
}
