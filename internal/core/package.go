package core

import (
	"fmt"

	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/xmlenc"
)

// PackageSpec describes a complete authoring run: content, permissions,
// and the protection to apply (paper Fig. 9, authoring half).
type PackageSpec struct {
	// Cluster is the content hierarchy to package.
	Cluster *disc.InteractiveCluster
	// Clips maps image paths ("CLIPS/clip-1.m2ts") to payloads.
	Clips map[string][]byte
	// PermissionRequests maps manifest IDs to their permission request
	// files; each is written to APPS/<id>/permissions.xml and wired
	// into the manifest.
	PermissionRequests map[string]*access.PermissionRequest

	// SignLevel/SignID select the signature granularity (LevelCluster
	// signs everything). Signing is skipped when Sign is false.
	Sign      bool
	SignLevel Level
	SignID    string

	// EncryptPaths lists element query paths to encrypt after signing.
	EncryptPaths []string
	// Encryption configures cipher and key delivery for EncryptPaths.
	Encryption xmlenc.EncryptOptions

	// SignClips adds a detached signature over all clip payloads at
	// SIGS/tracks.xml.
	SignClips bool
}

// ClipSignaturePath is where Package stores the detached clip signature.
const ClipSignaturePath = "SIGS/tracks.xml"

// Package assembles and protects a disc image.
func (p *Protector) Package(spec PackageSpec) (*disc.Image, error) {
	if spec.Cluster == nil {
		return nil, fmt.Errorf("core: PackageSpec requires a cluster")
	}
	im := disc.NewImage()

	// Wire permission request files into manifests before rendering.
	for id, pr := range spec.PermissionRequests {
		found := false
		for _, tr := range spec.Cluster.ApplicationTracks() {
			if tr.Manifest != nil && tr.Manifest.ID == id {
				path := "APPS/" + id + "/permissions.xml"
				if err := im.Put(path, pr.Document().Bytes()); err != nil {
					return nil, err
				}
				tr.Manifest.PermissionFile = path
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("core: permission request for unknown manifest %q", id)
		}
	}

	doc := spec.Cluster.Document()

	if spec.Sign {
		if len(spec.EncryptPaths) > 0 {
			if _, err := p.SignThenEncrypt(doc, SignThenEncryptSpec{
				Level:       spec.SignLevel,
				ID:          spec.SignID,
				PostEncrypt: spec.EncryptPaths,
				Encryption:  spec.Encryption,
			}); err != nil {
				return nil, err
			}
		} else if _, err := p.Sign(doc, spec.SignLevel, spec.SignID); err != nil {
			return nil, err
		}
	} else if len(spec.EncryptPaths) > 0 {
		for i, path := range spec.EncryptPaths {
			el, err := doc.Root().Find(path)
			if err != nil {
				return nil, err
			}
			if el == nil {
				return nil, fmt.Errorf("core: EncryptPaths %q matched nothing", path)
			}
			opts := spec.Encryption
			if opts.DataID == "" {
				opts.DataID = fmt.Sprintf("enc-%d", i+1)
			}
			if _, err := xmlenc.EncryptElement(el, opts); err != nil {
				return nil, err
			}
		}
	}

	if err := im.Put(disc.IndexPath, doc.Bytes()); err != nil {
		return nil, err
	}

	var clipPaths []string
	for path, data := range spec.Clips {
		if err := im.Put(path, data); err != nil {
			return nil, err
		}
		clipPaths = append(clipPaths, path)
	}

	if spec.SignClips {
		if len(clipPaths) == 0 {
			return nil, fmt.Errorf("core: SignClips set but no clips supplied")
		}
		// Deterministic reference order.
		sortStrings(clipPaths)
		if err := p.SignTrackPayloads(im, clipPaths, ClipSignaturePath); err != nil {
			return nil, err
		}
	}
	return im, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
