package core

import (
	"bytes"
	"context"
	"crypto"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"discsec/internal/dectrans"
	"discsec/internal/disc"
	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
)

// Opener is the player-side Verifier and Decryptor of the paper's §8
// architecture, applying the Fig. 9 processing order.
type Opener struct {
	// Roots are the player's trusted root certificates (§5.5). When
	// nil, embedded certificates are accepted without chain validation
	// — only suitable for tests.
	Roots *x509.CertPool
	// Decrypt supplies key material for encrypted regions.
	Decrypt xmlenc.DecryptOptions
	// RequireSignature makes Open fail on documents without any
	// signature (the player policy for downloaded applications).
	RequireSignature bool
	// Resolver dereferences detached reference URIs (usually the disc
	// image).
	Resolver xmldsig.ExternalResolver
	// KeyByName resolves ds:KeyName hints when the signature embeds no
	// certificate — the XKMS trust-server flow of the paper's §7
	// (keymgmt.Service.PublicKeyByName or Client.PublicKeyByName).
	KeyByName func(name string) (crypto.PublicKey, error)
	// AcceptedSignatureMethods optionally restricts algorithms.
	AcceptedSignatureMethods []string
}

// SignatureReport describes one validated signature.
type SignatureReport struct {
	// SignerName is the ds:KeyName hint, usually the identity name.
	SignerName string
	// SignerCN is the common name of the leaf certificate, when
	// present.
	SignerCN string
	// SignerKeyFingerprint is the SHA-256 of the PKIX encoding of the
	// public key that validated the signature (empty for HMAC
	// signatures). This — not the mutable KeyName/CN hints — is the
	// identity the verification library keys its cache on.
	SignerKeyFingerprint string
	// ChainValidated reports whether an X.509 chain to the player
	// roots was validated.
	ChainValidated bool
	// References lists validated reference URIs.
	References []string
	// DecryptedBeforeVerify counts post-signature encryptions undone
	// by the decryption transform pass.
	DecryptedBeforeVerify int
}

// OpenResult is the outcome of processing a protected document.
type OpenResult struct {
	// Doc is the fully decrypted, verified document.
	Doc *xmldom.Document
	// Signatures reports each validated signature.
	Signatures []SignatureReport
	// OpenedAfterVerify counts excepted regions decrypted after
	// verification.
	OpenedAfterVerify int
}

// ErrVerificationRequired is returned when RequireSignature is set and
// the document carries no signature.
var ErrVerificationRequired = errors.New("core: document carries no signature but the platform requires one")

// KeyFingerprint derives the stable signer identity used for cache
// keying and revocation fan-out: the hex SHA-256 of the key's PKIX
// (SubjectPublicKeyInfo) encoding. Returns "" for a nil key or one the
// x509 package cannot marshal.
func KeyFingerprint(pub crypto.PublicKey) string {
	if pub == nil {
		return ""
	}
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(der)
	return hex.EncodeToString(sum[:])
}

// OpenOption configures one OpenReader call.
type OpenOption func(*openConfig)

type openConfig struct {
	parse xmldom.ParseOptions
}

// WithParseOptions overrides the streaming parser's security limits
// (depth, token count, doctype policy) for one open.
func WithParseOptions(po xmldom.ParseOptions) OpenOption {
	return func(c *openConfig) { c.parse = po }
}

// OpenReader processes a protected cluster/manifest document streamed
// from r end-to-end:
//
//  1. For each signature, run the decryption transform pass (decrypt
//     everything encrypted after signing, leave dcrpt:Except regions).
//  2. Verify every signature; any failure aborts.
//  3. Decrypt remaining (excepted) regions so the application is
//     executable.
//
// The document is tokenized in a single hardened streaming pass
// (internal/xmlstream); r is read exactly once and never buffered
// whole. The context carries cancellation intent and the obs.Recorder
// that receives per-stage spans (parse, dectrans, digest, signature,
// decrypt) and security-audit events.
func (o *Opener) OpenReader(ctx context.Context, r io.Reader, opts ...OpenOption) (*OpenResult, error) {
	var cfg openConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	rec := obs.FromContext(ctx)
	sp := rec.Start(obs.StageParse)
	doc, err := xmldom.ParseWithOptions(r, cfg.parse)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: parse: %w", err)
	}
	return o.OpenDocument(ctx, doc)
}

// Open is OpenReader over an in-memory document.
func (o *Opener) Open(ctx context.Context, docBytes []byte) (*OpenResult, error) {
	return o.OpenReader(ctx, bytes.NewReader(docBytes))
}

// OpenDocument is Open over an already-parsed document (which it
// mutates).
func (o *Opener) OpenDocument(ctx context.Context, doc *xmldom.Document) (*OpenResult, error) {
	rec := obs.FromContext(ctx)
	dec := o.Decrypt
	dec.Recorder = rec
	res := &OpenResult{Doc: doc}

	sigs := xmldsig.FindSignatures(doc)
	if len(sigs) == 0 {
		if o.RequireSignature {
			rec.Audit(obs.AuditVerifyFailed, "unsigned document rejected: platform requires a signature")
			return nil, ErrVerificationRequired
		}
		// Unsigned content: just decrypt whatever we can.
		n, err := xmlenc.DecryptAll(doc, dec)
		if err != nil {
			return nil, err
		}
		res.OpenedAfterVerify = n
		return res, nil
	}

	// Phase 1: decryption transform per signature.
	dtSpan := rec.Start(obs.StageDectrans)
	reports := make([]SignatureReport, len(sigs))
	for i, sig := range sigs {
		dres, err := dectrans.ProcessSignature(doc, sig, dec)
		if err != nil {
			dtSpan.End()
			return nil, fmt.Errorf("core: decryption transform: %w", err)
		}
		reports[i].DecryptedBeforeVerify = dres.Decrypted
	}
	dtSpan.End()

	// Phase 2: verify all signatures.
	for i, sig := range sigs {
		vres, err := xmldsig.Verify(doc, sig, xmldsig.VerifyOptions{
			Roots:                    o.Roots,
			Resolver:                 o.Resolver,
			KeyByName:                o.KeyByName,
			AcceptedSignatureMethods: o.AcceptedSignatureMethods,
			Recorder:                 rec,
		})
		if err != nil {
			rec.Audit(obs.AuditVerifyFailed, "signature %d: %v", i+1, err)
			return nil, fmt.Errorf("core: signature %d: %w", i+1, err)
		}
		reports[i].ChainValidated = vres.CertificateChainValidated
		reports[i].SignerKeyFingerprint = KeyFingerprint(vres.SignerKey)
		if vres.KeyInfo != nil {
			reports[i].SignerName = vres.KeyInfo.KeyName
			if len(vres.KeyInfo.Certificates) > 0 {
				reports[i].SignerCN = vres.KeyInfo.Certificates[0].Subject.CommonName
			}
		}
		for _, ref := range vres.References {
			reports[i].References = append(reports[i].References, ref.URI)
		}
	}
	res.Signatures = reports

	// Phase 3: open excepted regions.
	n, err := xmlenc.DecryptAll(doc, dec)
	if err != nil {
		return nil, fmt.Errorf("core: opening excepted regions: %w", err)
	}
	res.OpenedAfterVerify = n
	return res, nil
}

// VerifyDetached validates a detached signature file from the disc image
// against the image contents (track payload integrity, §5.3).
func (o *Opener) VerifyDetached(ctx context.Context, im *disc.Image, signaturePath string) (*SignatureReport, error) {
	raw, err := im.Get(signaturePath)
	if err != nil {
		return nil, err
	}
	return o.verifyDetachedReader(ctx, bytes.NewReader(raw), im, signaturePath)
}

// VerifyDetachedReader validates a detached signature document streamed
// from r, dereferencing its reference URIs through resolver (usually
// the disc image). It is the reader-first form of VerifyDetached.
func (o *Opener) VerifyDetachedReader(ctx context.Context, r io.Reader, resolver xmldsig.ExternalResolver) (*SignatureReport, error) {
	return o.verifyDetachedReader(ctx, r, resolver, "(reader)")
}

func (o *Opener) verifyDetachedReader(ctx context.Context, r io.Reader, resolver xmldsig.ExternalResolver, label string) (*SignatureReport, error) {
	rec := obs.FromContext(ctx)
	sp := rec.Start(obs.StageParse)
	doc, err := xmldom.Parse(r)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: parse detached signature: %w", err)
	}
	sig := xmldsig.FindSignature(doc)
	if sig == nil {
		return nil, xmldsig.ErrNoSignature
	}
	vres, err := xmldsig.Verify(doc, sig, xmldsig.VerifyOptions{
		Roots:                    o.Roots,
		Resolver:                 resolver,
		KeyByName:                o.KeyByName,
		AcceptedSignatureMethods: o.AcceptedSignatureMethods,
		Recorder:                 rec,
	})
	if err != nil {
		rec.Audit(obs.AuditVerifyFailed, "detached signature %s: %v", label, err)
		return nil, err
	}
	rep := &SignatureReport{
		ChainValidated:       vres.CertificateChainValidated,
		SignerKeyFingerprint: KeyFingerprint(vres.SignerKey),
	}
	if vres.KeyInfo != nil {
		rep.SignerName = vres.KeyInfo.KeyName
		if len(vres.KeyInfo.Certificates) > 0 {
			rep.SignerCN = vres.KeyInfo.Certificates[0].Subject.CommonName
		}
	}
	for _, ref := range vres.References {
		rep.References = append(rep.References, ref.URI)
	}
	return rep, nil
}
