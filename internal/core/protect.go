// Package core implements the paper's primary contribution: applying the
// W3C XML security mechanisms end-to-end to interactive applications in
// the optical disc content hierarchy.
//
// The authoring side (Protector) signs and encrypts at the granularities
// of §5 and §6 — Interactive Cluster, Track, Manifest, and the
// Markup/Code parts within a manifest — in the §7 order (sign first,
// encrypt second, with the Decryption Transform recording which
// encrypted regions predate the signature). The player side (Opener)
// reverses the process in the Fig. 9 order: decrypt what was encrypted
// after signing, verify every signature against the platform trust
// anchors, then open the remaining regions.
package core

import (
	"crypto/rsa"
	"errors"
	"fmt"

	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// Level selects the signing/encryption granularity of the paper's §5.2.
type Level int

// Granularity levels.
const (
	// LevelCluster covers the whole Interactive Cluster (§5.3).
	LevelCluster Level = iota
	// LevelTrack covers one track (§5.3, selective track signing).
	LevelTrack
	// LevelManifest covers one Application Manifest (§5.4).
	LevelManifest
	// LevelCode covers only the code part of a manifest (§5.4:
	// selective signing of scripts).
	LevelCode
	// LevelMarkup covers only the markup part of a manifest.
	LevelMarkup
)

func (l Level) String() string {
	switch l {
	case LevelCluster:
		return "cluster"
	case LevelTrack:
		return "track"
	case LevelManifest:
		return "manifest"
	case LevelCode:
		return "code"
	case LevelMarkup:
		return "markup"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Protector is the authoring-side Signer and Encryptor of the paper's
// §8 architecture.
type Protector struct {
	// Identity signs on behalf of the content creator or application
	// author; its certificate chain is embedded in KeyInfo.
	Identity *keymgmt.Identity
	// SignatureMethod and DigestMethod default to RSA-SHA256/SHA-256
	// (ECDSA identities switch the signature method automatically).
	SignatureMethod string
	DigestMethod    string
	// EncryptionAlgorithm defaults to AES-256-GCM.
	EncryptionAlgorithm string
}

func (p *Protector) signOptions() (xmldsig.SignOptions, error) {
	if p.Identity == nil {
		return xmldsig.SignOptions{}, errors.New("core: Protector requires an identity")
	}
	method := p.SignatureMethod
	if method == "" {
		switch p.Identity.Key.Public().(type) {
		case *rsa.PublicKey:
			method = xmlsecuri.SigRSASHA256
		default:
			method = xmlsecuri.SigECDSASHA256
		}
	}
	return xmldsig.SignOptions{
		Key:             p.Identity.Key,
		SignatureMethod: method,
		DigestMethod:    p.DigestMethod,
		KeyInfo: xmldsig.KeyInfoSpec{
			KeyName:      p.Identity.Name,
			Certificates: p.Identity.Chain,
		},
	}, nil
}

// targetForLevel resolves the element a granularity level refers to
// inside a cluster document.
func targetForLevel(doc *xmldom.Document, level Level, id string) (*xmldom.Element, error) {
	root := doc.Root()
	if root == nil {
		return nil, errors.New("core: empty document")
	}
	switch level {
	case LevelCluster:
		return root, nil
	case LevelTrack:
		for _, tr := range root.ChildElementsNamed(disc.ClusterNamespace, "track") {
			if tr.AttrValue("Id") == id {
				return tr, nil
			}
		}
		return nil, fmt.Errorf("core: no track %q", id)
	case LevelManifest, LevelCode, LevelMarkup:
		var manifest *xmldom.Element
		root.Walk(func(n xmldom.Node) bool {
			e, ok := n.(*xmldom.Element)
			if !ok {
				return true
			}
			if e.Local == "manifest" && e.AttrValue("Id") == id {
				manifest = e
				return false
			}
			return true
		})
		if manifest == nil {
			return nil, fmt.Errorf("core: no manifest %q", id)
		}
		switch level {
		case LevelCode:
			code := manifest.FirstChildNamed(disc.ClusterNamespace, "code")
			if code == nil {
				code = manifest.FirstChildElement("code")
			}
			if code == nil {
				return nil, fmt.Errorf("core: manifest %q has no code part", id)
			}
			return code, nil
		case LevelMarkup:
			mk := manifest.FirstChildNamed(disc.ClusterNamespace, "markup")
			if mk == nil {
				mk = manifest.FirstChildElement("markup")
			}
			if mk == nil {
				return nil, fmt.Errorf("core: manifest %q has no markup part", id)
			}
			return mk, nil
		default:
			return manifest, nil
		}
	default:
		return nil, fmt.Errorf("core: unknown level %v", level)
	}
}

// ensureID guarantees the element carries an Id attribute, generating a
// stable one from its position when missing, and returns the Id value.
func ensureID(doc *xmldom.Document, el *xmldom.Element, hint string) string {
	if v, ok := el.Attr("Id"); ok && v != "" {
		return v
	}
	base := hint
	if base == "" {
		base = el.Local
	}
	for i := 1; ; i++ {
		candidate := fmt.Sprintf("%s-%d", base, i)
		if doc.ElementByID(candidate) == nil {
			el.SetAttr("Id", candidate)
			return candidate
		}
	}
}

// Sign applies an XML signature at the given granularity. For
// LevelCluster the signature envelops the whole document (appended under
// the root with an enveloped-signature transform); for narrower levels
// the signature references the target by Id and is appended under the
// cluster root, detached from the covered subtree.
func (p *Protector) Sign(doc *xmldom.Document, level Level, id string) (*xmldom.Element, error) {
	opts, err := p.signOptions()
	if err != nil {
		return nil, err
	}
	target, err := targetForLevel(doc, level, id)
	if err != nil {
		return nil, err
	}
	if level == LevelCluster {
		return xmldsig.SignEnveloped(doc, doc.Root(), opts)
	}
	targetID := ensureID(doc, target, id)
	return xmldsig.SignElementByID(doc, doc.Root(), targetID, opts)
}

// SignThenEncrypt performs the paper's §7 end-to-end order on a cluster
// document: regions listed in PreEncrypted are assumed already encrypted
// (they become dcrpt:Except entries), the signature is generated, and
// afterwards the PostEncrypt regions are encrypted. The verifier must run
// the Opener to undo this in the right order.
type SignThenEncryptSpec struct {
	// Level and ID select the signature coverage.
	Level Level
	ID    string
	// PreEncryptedIDs lists EncryptedData Ids that existed before
	// signing (signed in ciphertext form).
	PreEncryptedIDs []string
	// PostEncrypt lists target element paths (relative to the cluster
	// root, xmldom query syntax) to encrypt after signing.
	PostEncrypt []string
	// Encryption configures the cipher and key delivery for
	// PostEncrypt.
	Encryption xmlenc.EncryptOptions
}

// SignThenEncrypt executes the spec and returns the generated signature
// element.
func (p *Protector) SignThenEncrypt(doc *xmldom.Document, spec SignThenEncryptSpec) (*xmldom.Element, error) {
	opts, err := p.signOptions()
	if err != nil {
		return nil, err
	}
	target, err := targetForLevel(doc, spec.Level, spec.ID)
	if err != nil {
		return nil, err
	}

	var refs []xmldsig.ReferenceSpec
	transforms := []string{xmlsecuri.TransformDecryptXML, xmlsecuri.ExcC14N}
	var exceptURIs []string
	for _, id := range spec.PreEncryptedIDs {
		exceptURIs = append(exceptURIs, "#"+id)
	}
	if spec.Level == LevelCluster {
		refs = []xmldsig.ReferenceSpec{{
			URI:               "",
			Transforms:        append([]string{xmlsecuri.TransformEnveloped}, transforms...),
			DecryptExceptURIs: exceptURIs,
		}}
	} else {
		targetID := ensureID(doc, target, spec.ID)
		chain := transforms
		if elementContainsCore(target, doc.Root()) {
			chain = append([]string{xmlsecuri.TransformEnveloped}, transforms...)
		}
		refs = []xmldsig.ReferenceSpec{{
			URI:               "#" + targetID,
			Transforms:        chain,
			DecryptExceptURIs: exceptURIs,
		}}
	}

	sig, err := xmldsig.SignWithReferences(doc, doc.Root(), refs, opts)
	if err != nil {
		return nil, err
	}

	for i, path := range spec.PostEncrypt {
		el, err := doc.Root().Find(path)
		if err != nil {
			return nil, err
		}
		if el == nil {
			return nil, fmt.Errorf("core: PostEncrypt path %q matched nothing", path)
		}
		encOpts := spec.Encryption
		if encOpts.DataID == "" {
			encOpts.DataID = fmt.Sprintf("enc-post-%d", i+1)
		}
		if _, err := xmlenc.EncryptElement(el, encOpts); err != nil {
			return nil, fmt.Errorf("core: encrypting %q: %w", path, err)
		}
	}
	return sig, nil
}

// EncryptRegion encrypts one element (by query path) before signing; the
// returned Id must be passed as a PreEncryptedID to SignThenEncrypt.
func (p *Protector) EncryptRegion(doc *xmldom.Document, path, dataID string, opts xmlenc.EncryptOptions) (string, error) {
	el, err := doc.Root().Find(path)
	if err != nil {
		return "", err
	}
	if el == nil {
		return "", fmt.Errorf("core: path %q matched nothing", path)
	}
	if dataID == "" {
		dataID = "enc-pre-1"
	}
	opts.DataID = dataID
	if p.EncryptionAlgorithm != "" && opts.Algorithm == "" {
		opts.Algorithm = p.EncryptionAlgorithm
	}
	if _, err := xmlenc.EncryptElement(el, opts); err != nil {
		return "", err
	}
	return dataID, nil
}

// SignTrackPayloads generates a detached signature over binary track
// payloads in the disc image (the Fig. 6 detached form for A/V files),
// stored at the given image path.
func (p *Protector) SignTrackPayloads(im *disc.Image, payloadPaths []string, signaturePath string) error {
	opts, err := p.signOptions()
	if err != nil {
		return err
	}
	refs := make([]xmldsig.ReferenceSpec, 0, len(payloadPaths))
	for _, path := range payloadPaths {
		if !im.Has(path) {
			return fmt.Errorf("core: image has no payload %q", path)
		}
		refs = append(refs, xmldsig.ReferenceSpec{URI: "disc://" + path})
	}
	sigDoc, err := xmldsig.SignDetached(refs, im, opts)
	if err != nil {
		return err
	}
	return im.Put(signaturePath, sigDoc.Bytes())
}

func elementContainsCore(ancestor, e *xmldom.Element) bool {
	for cur := e; cur != nil; cur = cur.ParentElement() {
		if cur == ancestor {
			return true
		}
	}
	return false
}
