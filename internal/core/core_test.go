package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/xmldom"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// Shared PKI fixture.
var (
	rootCA  *keymgmt.CA
	creator *keymgmt.Identity
)

func init() {
	var err error
	rootCA, err = keymgmt.NewRootCA("Format Licensor Root", keymgmt.ECDSAP256)
	if err != nil {
		panic(err)
	}
	creator, err = rootCA.IssueIdentity("Studio Content Creator", keymgmt.ECDSAP256)
	if err != nil {
		panic(err)
	}
}

func sampleClusterDoc(t *testing.T) *xmldom.Document {
	t.Helper()
	c := &disc.InteractiveCluster{
		Title: "Feature",
		Tracks: []*disc.Track{
			{
				ID:   "t-av",
				Kind: disc.TrackAV,
				Playlist: &disc.Playlist{Items: []disc.PlayItem{
					{ClipID: "clip-1", InMS: 0, OutMS: 1000},
				}},
			},
			{
				ID:   "t-app",
				Kind: disc.TrackApplication,
				Manifest: &disc.Manifest{
					ID: "app-1",
					Markup: disc.Markup{SubMarkups: []disc.SubMarkup{
						{Kind: "layout", Content: xmldom.NewElement("layout")},
					}},
					Code: disc.Code{Scripts: []disc.Script{
						{Language: "ecmascript", Source: "var hs = 9000;"},
					}},
				},
			},
		},
	}
	return c.Document()
}

func protector() *Protector {
	return &Protector{Identity: creator}
}

func key32() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i)
	}
	return k
}

func TestSignLevelsAndOpen(t *testing.T) {
	for _, level := range []Level{LevelCluster, LevelTrack, LevelManifest, LevelCode, LevelMarkup} {
		t.Run(level.String(), func(t *testing.T) {
			doc := sampleClusterDoc(t)
			id := map[Level]string{
				LevelCluster:  "",
				LevelTrack:    "t-app",
				LevelManifest: "app-1",
				LevelCode:     "app-1",
				LevelMarkup:   "app-1",
			}[level]
			if _, err := protector().Sign(doc, level, id); err != nil {
				t.Fatalf("sign at %v: %v", level, err)
			}
			opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true}
			res, err := opener.Open(context.Background(), doc.Bytes())
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if len(res.Signatures) != 1 {
				t.Fatalf("signatures = %d", len(res.Signatures))
			}
			rep := res.Signatures[0]
			if !rep.ChainValidated {
				t.Error("chain not validated")
			}
			if rep.SignerName != "Studio Content Creator" || rep.SignerCN != "Studio Content Creator" {
				t.Errorf("signer = %q / %q", rep.SignerName, rep.SignerCN)
			}
		})
	}
}

func TestSignLevelTamperScope(t *testing.T) {
	// Signing at LevelCode: markup edits pass, script edits fail.
	doc := sampleClusterDoc(t)
	if _, err := protector().Sign(doc, LevelCode, "app-1"); err != nil {
		t.Fatal(err)
	}
	serialized := doc.Bytes()

	opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true}
	if _, err := opener.Open(context.Background(), serialized); err != nil {
		t.Fatalf("clean open: %v", err)
	}

	scriptTampered := strings.Replace(string(serialized), "var hs = 9000;", "var hs = 1;", 1)
	if _, err := opener.Open(context.Background(), []byte(scriptTampered)); err == nil {
		t.Error("script tamper not detected")
	}

	markupTampered := strings.Replace(string(serialized), `kind="layout"`, `kind="layouty"`, 1)
	if markupTampered == string(serialized) {
		t.Fatal("test setup: markup target not found")
	}
	if _, err := opener.Open(context.Background(), []byte(markupTampered)); err != nil {
		t.Errorf("markup edit outside code coverage broke verification: %v", err)
	}
}

func TestUntrustedSignerRejected(t *testing.T) {
	otherRoot, err := keymgmt.NewRootCA("Rogue Root", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := otherRoot.IssueIdentity("Rogue Author", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	doc := sampleClusterDoc(t)
	if _, err := (&Protector{Identity: rogue}).Sign(doc, LevelCluster, ""); err != nil {
		t.Fatal(err)
	}
	opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true}
	if _, err := opener.Open(context.Background(), doc.Bytes()); err == nil {
		t.Error("signature from untrusted root accepted")
	}
}

func TestRequireSignature(t *testing.T) {
	doc := sampleClusterDoc(t)
	opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true}
	if _, err := opener.Open(context.Background(), doc.Bytes()); !errors.Is(err, ErrVerificationRequired) {
		t.Errorf("err = %v, want ErrVerificationRequired", err)
	}
	lax := &Opener{Roots: rootCA.Pool()}
	if _, err := lax.Open(context.Background(), doc.Bytes()); err != nil {
		t.Errorf("lax open: %v", err)
	}
}

func TestSignThenEncryptEndToEnd(t *testing.T) {
	doc := sampleClusterDoc(t)
	p := protector()
	k := key32()

	// Pre-encrypt the markup part (signed as ciphertext), then sign
	// the manifest, then post-encrypt the code part.
	preID, err := p.EncryptRegion(doc, "//manifest/markup", "enc-markup", xmlenc.EncryptOptions{Key: k})
	if err != nil {
		t.Fatalf("pre-encrypt: %v", err)
	}
	_, err = p.SignThenEncrypt(doc, SignThenEncryptSpec{
		Level:           LevelManifest,
		ID:              "app-1",
		PreEncryptedIDs: []string{preID},
		PostEncrypt:     []string{"//manifest/code"},
		Encryption:      xmlenc.EncryptOptions{Key: k},
	})
	if err != nil {
		t.Fatalf("sign-then-encrypt: %v", err)
	}

	transmitted := doc.Bytes()
	if strings.Contains(string(transmitted), "var hs = 9000;") {
		t.Fatal("script plaintext leaked")
	}

	opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true, Decrypt: xmlenc.DecryptOptions{Key: k}}
	res, err := opener.Open(context.Background(), transmitted)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if res.Signatures[0].DecryptedBeforeVerify != 1 {
		t.Errorf("decrypted before verify = %d, want 1", res.Signatures[0].DecryptedBeforeVerify)
	}
	if res.OpenedAfterVerify != 1 {
		t.Errorf("opened after verify = %d, want 1", res.OpenedAfterVerify)
	}
	script, _ := res.Doc.Root().Find("//manifest/code/script")
	if script == nil || script.Text() != "var hs = 9000;" {
		t.Errorf("script not recovered: %v", script)
	}
	layout, _ := res.Doc.Root().Find("//manifest/markup/submarkup")
	if layout == nil {
		t.Error("markup not recovered")
	}
}

func TestSignThenEncryptTamperOfCiphertext(t *testing.T) {
	doc := sampleClusterDoc(t)
	p := protector()
	k := key32()
	_, err := p.SignThenEncrypt(doc, SignThenEncryptSpec{
		Level:       LevelCluster,
		PostEncrypt: []string{"//manifest/code"},
		Encryption:  xmlenc.EncryptOptions{Key: k},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the post-signature ciphertext wholesale with a fresh
	// encryption of different content (attacker knows the key).
	evil := sampleClusterDoc(t)
	evilCode, _ := evil.Root().Find("//manifest/code")
	evilCode.FirstChildElement("script").SetText("var hs = 0; hack();")
	if _, err := xmlenc.EncryptElement(evilCode, xmlenc.EncryptOptions{Key: k, DataID: "enc-post-1"}); err != nil {
		t.Fatal(err)
	}
	victim := doc.Bytes()
	evilED, _ := evil.Root().Find("//manifest/EncryptedData")
	if evilED == nil {
		t.Fatal("setup: no evil EncryptedData")
	}
	origED, _ := doc.Root().Find("//manifest/EncryptedData")
	swapped := strings.Replace(string(victim), origED.String(), evilED.String(), 1)
	if swapped == string(victim) {
		t.Fatal("setup: ciphertext swap failed")
	}
	opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true, Decrypt: xmlenc.DecryptOptions{Key: k}}
	if _, err := opener.Open(context.Background(), []byte(swapped)); err == nil {
		t.Error("ciphertext substitution not detected (sign-then-encrypt must cover plaintext)")
	}
}

func TestDetachedTrackSignature(t *testing.T) {
	im := disc.NewImage()
	clip1 := disc.GenerateClip(disc.ClipSpec{DurationMS: 200, BitrateKbps: 2000, Seed: 1})
	clip2 := disc.GenerateClip(disc.ClipSpec{DurationMS: 200, BitrateKbps: 2000, Seed: 2})
	im.Put("CLIPS/clip-1.m2ts", clip1)
	im.Put("CLIPS/clip-2.m2ts", clip2)

	p := protector()
	if err := p.SignTrackPayloads(im, []string{"CLIPS/clip-1.m2ts", "CLIPS/clip-2.m2ts"}, "SIGS/tracks.xml"); err != nil {
		t.Fatalf("sign payloads: %v", err)
	}

	opener := &Opener{Roots: rootCA.Pool()}
	rep, err := opener.VerifyDetached(context.Background(), im, "SIGS/tracks.xml")
	if err != nil {
		t.Fatalf("verify detached: %v", err)
	}
	if len(rep.References) != 2 || !rep.ChainValidated {
		t.Errorf("report = %+v", rep)
	}

	// Corrupt one clip: detection.
	clip1[100] ^= 0xFF
	im.Put("CLIPS/clip-1.m2ts", clip1)
	if _, err := opener.VerifyDetached(context.Background(), im, "SIGS/tracks.xml"); err == nil {
		t.Error("clip corruption not detected")
	}

	// Missing payload.
	if err := p.SignTrackPayloads(im, []string{"CLIPS/ghost.m2ts"}, "SIGS/x.xml"); err == nil {
		t.Error("missing payload accepted")
	}
}

func TestTargetResolutionErrors(t *testing.T) {
	doc := sampleClusterDoc(t)
	p := protector()
	if _, err := p.Sign(doc, LevelTrack, "ghost"); err == nil {
		t.Error("unknown track accepted")
	}
	if _, err := p.Sign(doc, LevelManifest, "ghost"); err == nil {
		t.Error("unknown manifest accepted")
	}
	if _, err := p.Sign(doc, Level(99), "x"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := (&Protector{}).Sign(doc, LevelCluster, ""); err == nil {
		t.Error("protector without identity accepted")
	}
	if _, err := p.EncryptRegion(doc, "//nothing/here", "", xmlenc.EncryptOptions{Key: key32()}); err == nil {
		t.Error("empty encrypt path accepted")
	}
}

func TestOpenerAlgorithmPolicy(t *testing.T) {
	doc := sampleClusterDoc(t)
	if _, err := protector().Sign(doc, LevelCluster, ""); err != nil {
		t.Fatal(err)
	}
	opener := &Opener{
		Roots:                    rootCA.Pool(),
		RequireSignature:         true,
		AcceptedSignatureMethods: []string{xmlsecuri.SigRSASHA256}, // identity signs with ECDSA
	}
	if _, err := opener.Open(context.Background(), doc.Bytes()); err == nil {
		t.Error("policy-restricted algorithm accepted")
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{
		LevelCluster: "cluster", LevelTrack: "track", LevelManifest: "manifest",
		LevelCode: "code", LevelMarkup: "markup",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d.String() = %q", int(l), l.String())
		}
	}
}

func TestPackageInPackage(t *testing.T) {
	p := protector()
	cluster := func() *disc.InteractiveCluster {
		c, _ := workloadClusterForTest()
		return c
	}

	// Happy path with everything on.
	c, clips := workloadClusterForTest()
	im, err := p.Package(PackageSpec{
		Cluster: c,
		Clips:   clips,
		PermissionRequests: map[string]*access.PermissionRequest{
			"app-1": {AppID: "app-1", Permissions: []access.Permission{{Name: access.PermGraphicsPlane}}},
		},
		Sign:         true,
		SignLevel:    LevelCluster,
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Key: key32()},
		SignClips:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !im.Has(ClipSignaturePath) || !im.Has(disc.IndexPath) {
		t.Errorf("paths = %v", im.Paths())
	}
	// Round trip through the opener.
	opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true, Decrypt: xmlenc.DecryptOptions{Key: key32()}}
	raw, _ := im.Get(disc.IndexPath)
	if _, err := opener.Open(context.Background(), raw); err != nil {
		t.Fatalf("open packaged index: %v", err)
	}

	// Error paths.
	if _, err := p.Package(PackageSpec{}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := p.Package(PackageSpec{
		Cluster: cluster(),
		PermissionRequests: map[string]*access.PermissionRequest{
			"ghost": {AppID: "ghost"},
		},
	}); err == nil {
		t.Error("permission request for unknown manifest accepted")
	}
	if _, err := p.Package(PackageSpec{Cluster: cluster(), Sign: true, SignLevel: LevelCluster, SignClips: true}); err == nil {
		t.Error("SignClips without clips accepted")
	}
	if _, err := p.Package(PackageSpec{Cluster: cluster(), EncryptPaths: []string{"//nothing"}, Encryption: xmlenc.EncryptOptions{Key: key32()}}); err == nil {
		t.Error("unmatched encrypt path accepted")
	}
	// Unsigned + encrypted works (encryption without signature).
	im2, err := p.Package(PackageSpec{
		Cluster:      cluster(),
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Key: key32()},
	})
	if err != nil {
		t.Fatalf("unsigned encrypt: %v", err)
	}
	raw2, _ := im2.Get(disc.IndexPath)
	if strings.Contains(string(raw2), "var acc") {
		t.Error("plaintext leaked in unsigned encrypted package")
	}
}

// workloadClusterForTest builds a small cluster with one app track and
// one clip, avoiding an import cycle with the workload package by hand
// construction.
func workloadClusterForTest() (*disc.InteractiveCluster, map[string][]byte) {
	c := &disc.InteractiveCluster{
		Title: "pkg-test",
		Tracks: []*disc.Track{
			{
				ID:   "t-av-1",
				Kind: disc.TrackAV,
				Playlist: &disc.Playlist{Items: []disc.PlayItem{
					{ClipID: "clip-1", InMS: 0, OutMS: 100},
				}},
			},
			{
				ID:   "t-app-1",
				Kind: disc.TrackApplication,
				Manifest: &disc.Manifest{
					ID:   "app-1",
					Code: disc.Code{Scripts: []disc.Script{{Language: "ecmascript", Source: "var acc = 1;"}}},
				},
			},
		},
	}
	clips := map[string][]byte{
		"CLIPS/clip-1.m2ts": disc.GenerateClip(disc.ClipSpec{DurationMS: 50, BitrateKbps: 1000, Seed: 8}),
	}
	return c, clips
}

// TestOpenReaderMatchesOpen: the streaming entry and the byte-slice
// entry agree on accept/reject and on the report for the same input —
// signed, tampered, unsigned, and malformed.
func TestOpenReaderMatchesOpen(t *testing.T) {
	signed := sampleClusterDoc(t)
	if _, err := protector().Sign(signed, LevelCluster, ""); err != nil {
		t.Fatal(err)
	}
	tampered := []byte(strings.Replace(string(signed.Bytes()), "var hs = 9000;", "var hs = 9001;", 1))

	cases := []struct {
		name string
		raw  []byte
	}{
		{"signed", signed.Bytes()},
		{"tampered", tampered},
		{"unsigned", []byte(`<cluster/>`)},
		{"malformed", []byte(`<cluster>`)},
		{"doctype", []byte(`<!DOCTYPE c []><cluster/>`)},
	}
	opener := &Opener{Roots: rootCA.Pool(), RequireSignature: true}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			byteRes, byteErr := opener.Open(context.Background(), tc.raw)
			streamRes, streamErr := opener.OpenReader(context.Background(), bytes.NewReader(tc.raw))
			if (byteErr == nil) != (streamErr == nil) {
				t.Fatalf("verdict divergence: Open err=%v, OpenReader err=%v", byteErr, streamErr)
			}
			if byteErr != nil {
				return
			}
			if len(byteRes.Signatures) != len(streamRes.Signatures) {
				t.Fatalf("signature counts diverge: %d vs %d", len(byteRes.Signatures), len(streamRes.Signatures))
			}
			for i := range byteRes.Signatures {
				if byteRes.Signatures[i].SignerKeyFingerprint != streamRes.Signatures[i].SignerKeyFingerprint {
					t.Errorf("signature %d fingerprint diverges", i)
				}
			}
			if !bytes.Equal(byteRes.Doc.Bytes(), streamRes.Doc.Bytes()) {
				t.Error("verified documents diverge between entries")
			}
		})
	}
}
