package core

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"discsec/internal/keymgmt"
	"discsec/internal/xmldsig"
)

// The XKMS verification flow (paper §7 and the "extend the prototype
// with XML based Key Management" future work): the signer embeds only a
// ds:KeyName; the player resolves the verification key through the
// trust service, which also enforces revocation.
func TestOpenWithXKMSKeyResolution(t *testing.T) {
	// A signer that embeds no certificates — only a KeyName.
	doc := sampleClusterDoc(t)
	opts := xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), opts); err != nil {
		t.Fatal(err)
	}
	raw := doc.Bytes()
	if strings.Contains(string(raw), "X509Certificate") {
		t.Fatal("setup: certificate leaked into signature")
	}

	service := keymgmt.NewService(rootCA.Pool())
	if err := service.Register(creator.Name, creator.Cert, "auth"); err != nil {
		t.Fatal(err)
	}

	// In-process resolution.
	opener := &Opener{RequireSignature: true, KeyByName: service.PublicKeyByName}
	res, err := opener.Open(context.Background(), raw)
	if err != nil {
		t.Fatalf("open via in-process XKMS: %v", err)
	}
	if res.Signatures[0].SignerName != creator.Name {
		t.Errorf("signer = %q", res.Signatures[0].SignerName)
	}

	// Over-the-wire resolution.
	srv := httptest.NewServer(&keymgmt.Handler{Service: service})
	defer srv.Close()
	client := &keymgmt.Client{BaseURL: srv.URL}
	opener2 := &Opener{RequireSignature: true, KeyByName: client.PublicKeyByName}
	if _, err := opener2.Open(context.Background(), raw); err != nil {
		t.Fatalf("open via HTTP XKMS: %v", err)
	}

	// Revocation closes the door.
	if err := service.Revoke(creator.Name, "auth"); err != nil {
		t.Fatal(err)
	}
	if _, err := opener.Open(context.Background(), raw); err == nil {
		t.Error("revoked signer accepted via in-process XKMS")
	}
	if _, err := opener2.Open(context.Background(), raw); err == nil {
		t.Error("revoked signer accepted via HTTP XKMS")
	}
}

func TestOpenKeyNameUnknownBinding(t *testing.T) {
	doc := sampleClusterDoc(t)
	opts := xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: "nobody-knows-me"},
	}
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), opts); err != nil {
		t.Fatal(err)
	}
	service := keymgmt.NewService(rootCA.Pool())
	opener := &Opener{RequireSignature: true, KeyByName: service.PublicKeyByName}
	if _, err := opener.Open(context.Background(), doc.Bytes()); err == nil {
		t.Error("unknown key name accepted")
	}
}
