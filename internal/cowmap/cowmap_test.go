package cowmap

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestZeroValueEmpty(t *testing.T) {
	var m Map[string, int]
	if v, ok := m.Get("a"); ok || v != 0 {
		t.Errorf("Get on zero map = (%d, %v), want (0, false)", v, ok)
	}
	if n := m.Len(); n != 0 {
		t.Errorf("Len on zero map = %d, want 0", n)
	}
	m.Range(func(string, int) bool {
		t.Error("Range on zero map visited a key")
		return true
	})
	m.Delete("a") // no-op, must not panic
}

func TestSetGetDelete(t *testing.T) {
	var m Map[string, int]
	m.Set("a", 1)
	m.Set("b", 2)
	m.Set("a", 3) // replace
	if v, ok := m.Get("a"); !ok || v != 3 {
		t.Errorf("Get(a) = (%d, %v), want (3, true)", v, ok)
	}
	if v, ok := m.Get("b"); !ok || v != 2 {
		t.Errorf("Get(b) = (%d, %v), want (2, true)", v, ok)
	}
	if n := m.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
	m.Delete("a")
	if _, ok := m.Get("a"); ok {
		t.Error("Get(a) after Delete still present")
	}
	if n := m.Len(); n != 1 {
		t.Errorf("Len after Delete = %d, want 1", n)
	}
}

func TestGetOrCreate(t *testing.T) {
	var m Map[string, *atomic.Int64]
	calls := 0
	create := func() *atomic.Int64 {
		calls++
		return new(atomic.Int64)
	}
	a := m.GetOrCreate("a", create)
	b := m.GetOrCreate("a", create)
	if a != b {
		t.Error("GetOrCreate returned different values for one key")
	}
	if calls != 1 {
		t.Errorf("create ran %d times, want 1", calls)
	}
}

func TestRangeSnapshot(t *testing.T) {
	var m Map[string, int]
	m.Set("a", 1)
	m.Set("b", 2)
	seen := map[string]int{}
	m.Range(func(k string, v int) bool {
		// Writes during the walk must not be observed by it.
		m.Set("c", 3)
		seen[k] = v
		return true
	})
	if len(seen) != 2 || seen["a"] != 1 || seen["b"] != 2 {
		t.Errorf("Range saw %v, want the pre-walk table {a:1 b:2}", seen)
	}
	if _, ok := m.Get("c"); !ok {
		t.Error("write made during Range was lost")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	var m Map[int, int]
	for i := 0; i < 8; i++ {
		m.Set(i, i)
	}
	visits := 0
	m.Range(func(int, int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("Range visited %d keys after returning false, want 1", visits)
	}
}

// TestConcurrentAccess hammers one map from readers, writers, and
// GetOrCreate racers; run under -race this is the package's memory
// model check. Every GetOrCreate for a key must observe the same
// counter so the final total is exact.
func TestConcurrentAccess(t *testing.T) {
	var m Map[string, *atomic.Int64]
	keys := []string{"alpha", "beta", "gamma", "delta"}
	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := keys[(w+i)%len(keys)]
				m.GetOrCreate(k, newCounter).Add(1)
				m.Get(k)
				m.Len()
				m.Range(func(string, *atomic.Int64) bool { return true })
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for _, k := range keys {
		c, ok := m.Get(k)
		if !ok {
			t.Fatalf("key %s missing after the race", k)
		}
		total += c.Load()
	}
	if want := int64(workers * rounds); total != want {
		t.Errorf("counters total %d, want %d (a GetOrCreate race dropped a winner)", total, want)
	}
}

func newCounter() *atomic.Int64 { return new(atomic.Int64) }

func BenchmarkGet(b *testing.B) {
	var m Map[string, *atomic.Int64]
	m.Set("library.hit", new(atomic.Int64))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Get("library.hit")
		}
	})
}

func BenchmarkSyncMapGet(b *testing.B) {
	var m sync.Map
	m.Store("library.hit", new(atomic.Int64))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Load("library.hit")
		}
	})
}
