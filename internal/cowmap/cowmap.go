// Package cowmap provides a generic copy-on-write map for read-mostly
// hot paths.
//
// sync.Map's Load/Store take `any`, so every string-keyed access on an
// instrumented hot path boxes the key into an interface — one heap
// allocation per metric touch. Map[K, V] keeps reads to a single
// atomic pointer load plus one ordinary typed map lookup: zero
// allocations, no boxing, no lock. Writers serialize on a mutex and
// publish a fresh copy of the map, so a write costs O(len) — the right
// trade for tables like counter and histogram registries that grow to
// a handful of fixed names at warm-up and are then only read.
//
// The zero Map is empty and ready to use. All methods are safe for
// concurrent use.
package cowmap

import (
	"sync"
	"sync/atomic"
)

// Map is a copy-on-write map from K to V.
type Map[K comparable, V any] struct {
	p  atomic.Pointer[map[K]V]
	mu sync.Mutex // serializes writers; readers never take it
}

// Get returns the value stored under k.
//
//discvet:hotpath the read path is one atomic load and a typed lookup
func (m *Map[K, V]) Get(k K) (V, bool) {
	if p := m.p.Load(); p != nil {
		v, ok := (*p)[k]
		return v, ok
	}
	var zero V
	return zero, false
}

// GetOrCreate returns the value under k, installing create()'s result
// on first touch. Exactly one stored value ever exists per key: racing
// creators agree on the winner, and a loser's create() result is
// discarded. Pass a declared function, not a capturing literal — the
// steady state is the Get fast path and must not allocate a closure.
//
//discvet:hotpath steady state is the Get fast path
func (m *Map[K, V]) GetOrCreate(k K, create func() V) V {
	if v, ok := m.Get(k); ok {
		return v
	}
	return m.getOrCreateSlow(k, create)
}

// getOrCreateSlow is the first-touch path: one copy-write per new key.
//
//discvet:coldpath first touch of a key; copies the table once
func (m *Map[K, V]) getOrCreateSlow(k K, create func() V) V {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.p.Load(); p != nil {
		if v, ok := (*p)[k]; ok {
			return v
		}
	}
	v := create()
	m.storeLocked(k, v)
	return v
}

// Set stores v under k, replacing any existing value.
func (m *Map[K, V]) Set(k K, v V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeLocked(k, v)
}

// storeLocked publishes a copy of the table with k set to v. Callers
// hold m.mu.
func (m *Map[K, V]) storeLocked(k K, v V) {
	var cur map[K]V
	if p := m.p.Load(); p != nil {
		cur = *p
	}
	next := make(map[K]V, len(cur)+1)
	for ck, cv := range cur {
		next[ck] = cv
	}
	next[k] = v
	m.p.Store(&next)
}

// Delete removes k. Deleting an absent key is a no-op that publishes
// nothing.
func (m *Map[K, V]) Delete(k K) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.p.Load()
	if p == nil {
		return
	}
	cur := *p
	if _, ok := cur[k]; !ok {
		return
	}
	next := make(map[K]V, len(cur)-1)
	for ck, cv := range cur {
		if ck != k {
			next[ck] = cv
		}
	}
	m.p.Store(&next)
}

// Len reports the number of stored keys.
func (m *Map[K, V]) Len() int {
	if p := m.p.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// Range calls f for each key/value in an unspecified order, over the
// table as of the call. Returning false stops the iteration. Writes
// made during the walk are not observed.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	p := m.p.Load()
	if p == nil {
		return
	}
	for k, v := range *p {
		if !f(k, v) {
			return
		}
	}
}
