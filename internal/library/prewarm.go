package library

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/obs"
	"discsec/internal/xmldom"
)

// mounted is one registered disc: an immutable snapshot of its index
// bytes, the canonical key once known, and prewarmed per-track
// serializations. The serialized bytes are a pure function of the index
// snapshot, so they stay valid across trust-epoch refills of the same
// content; their trustworthiness is gated by OpenTrack succeeding.
type mounted struct {
	name string
	im   *disc.Image
	raw  []byte       // index document snapshot taken at Mount
	key  atomic.Value // canonical digest (string), set by first fill
	trks sync.Map     // trackID -> []byte (serialized verified track)
}

// Mount registers a disc image under name and prewarms its manifest
// tree: the index document is verified (and cached) synchronously, then
// the bounded worker pool fans out over the detached track-payload
// signature and per-track serializations. Any prewarm failure fails the
// Mount — the disc is not registered, so nothing unverified can be
// served later (fail closed).
func (l *Library) Mount(ctx context.Context, name string, im *disc.Image) error {
	ctx, rec := l.obsContext(ctx)
	if name == "" || im == nil {
		return fmt.Errorf("library: Mount requires a name and image")
	}
	if _, exists := l.mounts.Load(name); exists {
		return fmt.Errorf("%w: %q", ErrAlreadyMounted, name)
	}
	raw, err := im.ReadIndexDocumentBytes()
	if err != nil {
		return fmt.Errorf("library: mount %q: %w", name, err)
	}
	m := &mounted{name: name, im: im, raw: raw}

	// The index verdict anchors everything else; verify it first.
	v, _, err := l.openMounted(ctx, rec, m)
	if err != nil {
		return fmt.Errorf("library: mount %q: %w", name, err)
	}

	// Fan the rest of the tree out over the shared worker pool.
	var wg sync.WaitGroup
	errs := make(chan error, len(v.Cluster.Tracks)+1)
	run := func(task func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case l.prewarmSem <- struct{}{}:
				defer func() { <-l.prewarmSem }()
			case <-ctx.Done():
				errs <- ctx.Err()
				return
			}
			if err := ctx.Err(); err != nil {
				errs <- err
				return
			}
			rec.Inc("library.prewarm")
			if err := task(); err != nil {
				errs <- err
			}
		}()
	}
	if im.Has(core.ClipSignaturePath) {
		run(func() error {
			op := l.opener
			if _, err := op.VerifyDetached(ctx, im, core.ClipSignaturePath); err != nil {
				return fmt.Errorf("track payload signature: %w", err)
			}
			return nil
		})
	}
	for _, tr := range v.Cluster.Tracks {
		tr := tr
		run(func() error {
			m.trks.Store(tr.ID, tr.Element().Bytes())
			return nil
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			rec.Audit(obs.AuditVerifyFailed, "mount %s: prewarm: %v", name, err)
			return fmt.Errorf("library: mount %q: prewarm: %w", name, err)
		}
	}

	if _, exists := l.mounts.LoadOrStore(name, m); exists {
		return fmt.Errorf("%w: %q", ErrAlreadyMounted, name)
	}
	rec.Inc("library.mount")
	return nil
}

// Unmount forgets a disc. Its verdicts stay resident (they are
// content-addressed and may serve other mounts) until evicted.
func (l *Library) Unmount(name string) bool {
	_, ok := l.mounts.LoadAndDelete(name)
	return ok
}

// Mounts lists the mounted disc names (diagnostics and routing).
func (l *Library) Mounts() []string {
	var out []string
	l.mounts.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	return out
}

// openMounted serves the mounted disc's index verdict. The warm path
// costs two map lookups — the precomputed canonical key and the shard
// hit — with no parse or canonicalization; that is the whole point of
// mounting.
func (l *Library) openMounted(ctx context.Context, rec *obs.Recorder, m *mounted) (*Verdict, Status, error) {
	reparse := func() (*xmldom.Document, error) { return reparseBytes(rec, m.raw) }
	if k, ok := m.key.Load().(string); ok && k != "" {
		return l.open(ctx, rec, k, nil, reparse, int64(len(m.raw)), m.im)
	}
	// First touch: one streaming pass over the snapshot builds the
	// fill's private parse and learns the canonical key.
	doc, key, size, err := parseAndKey(rec, bytes.NewReader(m.raw))
	if err != nil {
		return nil, StatusMiss, fmt.Errorf("parse index: %w", err)
	}
	m.key.Store(key)
	return l.open(ctx, rec, key, doc, reparse, size, m.im)
}

// OpenDisc returns the verified verdict for a mounted disc's index: the
// decoded cluster, the security report, and how the call was served.
func (l *Library) OpenDisc(ctx context.Context, discName string) (*Verdict, Status, error) {
	ctx, rec := l.obsContext(ctx)
	defer rec.Start(obs.StageLibrary).End()
	got, ok := l.mounts.Load(discName)
	if !ok {
		return nil, StatusMiss, fmt.Errorf("%w: %q", ErrNotMounted, discName)
	}
	return l.openMounted(ctx, rec, got.(*mounted))
}

// OpenTrack returns one verified track of a mounted disc plus the
// verdict it came from. A warm call is pure cache; a cold or
// invalidated call re-verifies the disc's index snapshot (singleflight
// deduplicated) before any track is handed out.
func (l *Library) OpenTrack(ctx context.Context, discName, trackID string) (*disc.Track, *Verdict, Status, error) {
	v, status, err := l.OpenDisc(ctx, discName)
	if err != nil {
		return nil, nil, status, err
	}
	track := v.Cluster.FindTrack(trackID)
	if track == nil {
		return nil, nil, status, fmt.Errorf("%w: %q on disc %q", ErrNoTrack, trackID, discName)
	}
	return track, v, status, nil
}

// TrackXML serves the serialized verified track, preferring the
// prewarmed per-mount serialization. The bytes are only released after
// OpenTrack re-establishes the verdict, so a revoked signer's tracks
// stop serving even though their serialization is still resident.
func (l *Library) TrackXML(ctx context.Context, discName, trackID string) ([]byte, *Verdict, Status, error) {
	track, v, status, err := l.OpenTrack(ctx, discName, trackID)
	if err != nil {
		return nil, nil, status, err
	}
	if got, ok := l.mounts.Load(discName); ok {
		m := got.(*mounted)
		if b, ok := m.trks.Load(trackID); ok {
			return b.([]byte), v, status, nil
		}
		b := track.Element().Bytes()
		m.trks.Store(trackID, b)
		return b, v, status, nil
	}
	return track.Element().Bytes(), v, status, nil
}
