package library

import (
	"container/list"
	"sync"
)

// entry is one cached verdict plus the trust epochs it was filled
// under. Entries are immutable after insertion; validity is judged
// against the library's current epochs on every lookup.
type entry struct {
	key         string
	v           *Verdict
	globalEpoch uint64
	signerEpoch uint64
}

// shard is one byte-budgeted LRU segment of the cache. Each shard has
// its own mutex so lookups from many engines contend only within a
// digest's shard, never globally.
type shard struct {
	budget int64

	mu    sync.Mutex
	bytes int64
	items map[string]*list.Element // value is *entry
	lru   *list.List               // front = most recent
}

func newShards(n int, totalBudget int64) []*shard {
	per := totalBudget / int64(n)
	if per < 1 {
		per = 1
	}
	out := make([]*shard, n)
	for i := range out {
		out[i] = &shard{
			budget: per,
			items:  make(map[string]*list.Element),
			lru:    list.New(),
		}
	}
	return out
}

// get returns the entry under key (touching it most-recent) or nil.
//
//discvet:hotpath one map probe and an LRU splice per open
func (s *shard) get(key string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry)
}

// put inserts (or replaces) an entry and evicts from the LRU tail until
// the shard is back under budget, returning how many entries were
// evicted. A single entry larger than the whole budget is still
// admitted alone — the cache must not refuse the content it exists for.
func (s *shard) put(e *entry) (evicted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[e.key]; ok {
		old := el.Value.(*entry)
		s.bytes -= old.v.size
		el.Value = e
		s.lru.MoveToFront(el)
	} else {
		s.items[e.key] = s.lru.PushFront(e)
	}
	s.bytes += e.v.size
	for s.bytes > s.budget && s.lru.Len() > 1 {
		tail := s.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.items, victim.key)
		s.bytes -= victim.v.size
		evicted++
	}
	return evicted
}

// removeEntry drops the entry if it is still the resident one for its
// key (identity-checked so a concurrent refill is never clobbered).
func (s *shard) removeEntry(e *entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[e.key]
	if !ok || el.Value.(*entry) != e {
		return false
	}
	s.lru.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.v.size
	return true
}

func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

func (s *shard) sizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
