package library

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupSharesOneExecution drives the wait path
// deterministically: the leader blocks inside fn until 63 waiters have
// registered on the in-flight call, so the sharing semantics do not
// depend on scheduler parallelism (GOMAXPROCS=1 runs goroutines
// sequentially and would otherwise never produce a waiter).
func TestFlightGroupSharesOneExecution(t *testing.T) {
	g := &flightGroup{}
	entered := make(chan struct{})
	release := make(chan struct{})
	want := &Verdict{Key: "k"}
	var executions atomic.Int32

	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		v, err, shared := g.do("k", func() (*Verdict, error) {
			executions.Add(1)
			close(entered)
			<-release
			return want, nil
		})
		if v != want || err != nil || shared {
			t.Errorf("leader: v=%v err=%v shared=%v", v == want, err, shared)
		}
	}()
	<-entered

	const n = 63
	var done sync.WaitGroup
	var sharedCount atomic.Int32
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			v, err, shared := g.do("k", func() (*Verdict, error) {
				executions.Add(1)
				return nil, errors.New("waiter executed the fill")
			})
			if shared {
				sharedCount.Add(1)
			}
			if v != want || err != nil {
				t.Errorf("waiter: got v=%v err=%v", v == want, err)
			}
		}()
	}

	// Release only after every waiter is registered on the call, so
	// none of them can race past the leader's cleanup and become a
	// second leader.
	g.mu.Lock()
	c := g.m["k"]
	g.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for c.waiters.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters registered", c.waiters.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	leaderDone.Wait()
	done.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n {
		t.Fatalf("%d/%d waiters shared the execution", got, n)
	}
	g.mu.Lock()
	left := len(g.m)
	g.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d calls left registered after completion", left)
	}
}
