package library

import (
	"sync"
	"sync/atomic"
)

// flightGroup is a minimal singleflight: concurrent calls for the same
// key share one execution of fn. The zero value is ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	v   *Verdict
	err error
	// waiters counts callers that joined this call (observability and
	// deterministic tests).
	waiters atomic.Int32
}

// do runs fn once per key among concurrent callers. shared reports
// whether this caller joined an execution another caller led (waiters
// block until the leader finishes; the leader's context governs the
// work).
func (g *flightGroup) do(key string, fn func() (*Verdict, error)) (v *Verdict, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		c.wg.Wait()
		return c.v, c.err, true
	}
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.v, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.v, c.err, false
}
