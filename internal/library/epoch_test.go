package library_test

import (
	"context"
	"testing"

	"discsec/internal/library"
	"discsec/internal/obs"
)

// TestAdvanceGlobalEpochMonotonic pins the wire-facing epoch guard:
// announcements arriving from a cluster origin can be delayed,
// duplicated, or reordered, and none of that may roll the trust epoch
// back onto verdicts a newer revocation already killed.
func TestAdvanceGlobalEpochMonotonic(t *testing.T) {
	rec := obs.NewRecorder()
	lib := newLib(rec)
	raw := indexBytes(t, buildImage(t, 60))

	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusMiss {
		t.Fatalf("fill: status=%q err=%v", st, err)
	}

	if !lib.AdvanceGlobalEpoch(5) {
		t.Fatal("AdvanceGlobalEpoch(5) from 0 = false, want an advance")
	}
	if got := lib.GlobalEpoch(); got != 5 {
		t.Fatalf("GlobalEpoch = %d, want 5", got)
	}
	// The advance invalidated the resident verdict.
	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusMiss {
		t.Fatalf("post-advance open: status=%q err=%v, want a fresh miss", st, err)
	}

	// A delayed announcement from before the bump: dropped, counted,
	// and the epoch stands.
	if lib.AdvanceGlobalEpoch(3) {
		t.Fatal("AdvanceGlobalEpoch(3) after 5 = true, want a rejected rollback")
	}
	// A duplicate of the current epoch advances nothing either.
	if lib.AdvanceGlobalEpoch(5) {
		t.Fatal("AdvanceGlobalEpoch(5) at 5 = true, want a rejected duplicate")
	}
	if got := lib.GlobalEpoch(); got != 5 {
		t.Fatalf("GlobalEpoch = %d after stale deliveries, want 5", got)
	}
	// Neither stale delivery invalidated the fresh verdict.
	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusHit {
		t.Fatalf("open after stale deliveries: status=%q err=%v, want hit", st, err)
	}

	if got := rec.Counter("library.epoch_advance"); got != 1 {
		t.Errorf("epoch_advance = %d, want 1", got)
	}
	if got := rec.Counter("library.epoch_stale"); got != 2 {
		t.Errorf("epoch_stale = %d, want 2 (rollback and duplicate)", got)
	}
}
