package library_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/experiments"
	"discsec/internal/faults"
	"discsec/internal/keymgmt"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/resilience"
	"discsec/internal/workload"
	"discsec/internal/xmldsig"
)

// The prewarm fault matrix: verification and the XKMS trust service are
// faulted while Mount walks a disc's manifest tree. The invariant in
// every mode: Mount either recovers within its retry budget or fails
// closed — a disc whose tree could not be fully verified is never
// registered, so nothing from it can be served later.

func fastFaultPolicy() *resilience.Policy {
	return &resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// keyNameImage packs a disc whose index carries a KeyName-only
// signature: Mount's verification must resolve the signer through the
// trust service, so XKMS faults genuinely gate the prewarm.
func keyNameImage(t *testing.T, seed uint64) *disc.Image {
	t.Helper()
	_, creator := experiments.PKIFixture()
	cluster, _ := workload.Cluster(workload.ClusterSpec{AVTracks: 1, AppTracks: 1, Seed: seed})
	doc := cluster.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}); err != nil {
		t.Fatal(err)
	}
	im := disc.NewImage()
	if err := im.Put(disc.IndexPath, doc.Bytes()); err != nil {
		t.Fatal(err)
	}
	return im
}

// trustFixture stands up a live XKMS service with the creator key
// registered and returns a client routed through the fault schedule.
func trustFixture(t *testing.T, schedule []faults.Fault) (*httptest.Server, *keymgmt.Client) {
	t.Helper()
	root, creator := experiments.PKIFixture()
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&keymgmt.Handler{Service: svc})
	t.Cleanup(srv.Close)
	kc := &keymgmt.Client{
		BaseURL: srv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &faults.Transport{
			Schedule: faults.NewSchedule(schedule...),
		}},
		Retry:    fastFaultPolicy(),
		MaxStale: time.Hour,
	}
	return srv, kc
}

func hasAudit(rec *obs.Recorder, kind string) bool {
	for _, ev := range rec.AuditTrail() {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func trustLib(rec *obs.Recorder, kc *keymgmt.Client) *library.Library {
	return library.New(
		library.WithOpener(core.Opener{
			RequireSignature: true,
			KeyByName:        kc.PublicKeyByName,
		}),
		library.WithDegradedFunc(kc.Degraded),
		library.WithRecorder(rec),
	)
}

// TestMountRecoversFromTransientXKMSFault: one connection reset during
// key resolution is absorbed by the trust client's retry budget; the
// Mount completes and the disc serves.
func TestMountRecoversFromTransientXKMSFault(t *testing.T) {
	_, kc := trustFixture(t, []faults.Fault{{Kind: faults.Reset}})
	lib := trustLib(obs.NewRecorder(), kc)

	if err := lib.Mount(context.Background(), "disc-a", keyNameImage(t, 30)); err != nil {
		t.Fatalf("mount did not recover from a transient trust fault: %v", err)
	}
	v, st, err := lib.OpenDisc(context.Background(), "disc-a")
	if err != nil || st != library.StatusHit {
		t.Fatalf("post-mount open: status=%q err=%v", st, err)
	}
	if v.Degraded {
		t.Error("verdict marked degraded after a recovered transient fault")
	}
	if kc.Degraded() {
		t.Error("trust client degraded after successful retry")
	}
}

// TestMountFailsClosedOnColdTrustOutage: the trust service is
// unreachable and the client has no cached resolution to fall back on.
// The index cannot be verified, Mount fails, and the disc is not
// registered.
func TestMountFailsClosedOnColdTrustOutage(t *testing.T) {
	srv, kc := trustFixture(t, nil)
	srv.Close() // outage before any resolution warms the client cache
	lib := trustLib(obs.NewRecorder(), kc)

	if err := lib.Mount(context.Background(), "disc-a", keyNameImage(t, 31)); err == nil {
		t.Fatal("mount verified a disc with the trust service unreachable and no cache")
	}
	if _, _, err := lib.OpenDisc(context.Background(), "disc-a"); !errors.Is(err, library.ErrNotMounted) {
		t.Fatalf("failed mount left the disc reachable: %v", err)
	}
	if _, _, _, err := lib.TrackXML(context.Background(), "disc-a", "t-av-1"); !errors.Is(err, library.ErrNotMounted) {
		t.Fatalf("failed mount serves tracks: %v", err)
	}
}

// TestMountDegradesOnWarmTrustOutage: the client resolved the signer
// while the service was live, then the service goes down. A later Mount
// of different content by the same signer succeeds from the stale
// resolution — but the verdict is marked degraded, served hits are
// audited, and trust recovery forces re-verification.
func TestMountDegradesOnWarmTrustOutage(t *testing.T) {
	srv, kc := trustFixture(t, nil)
	rec := obs.NewRecorder()
	lib := trustLib(rec, kc)

	if err := lib.Mount(context.Background(), "disc-a", keyNameImage(t, 32)); err != nil {
		t.Fatalf("warm-up mount: %v", err)
	}
	if kc.Degraded() {
		t.Fatal("degraded after live resolution")
	}

	srv.Close() // XKMS outage with a warm client cache

	if err := lib.Mount(context.Background(), "disc-b", keyNameImage(t, 33)); err != nil {
		t.Fatalf("outage with fresh cache must degrade, not fail: %v", err)
	}
	if !kc.Degraded() {
		t.Fatal("trust client did not report the degraded resolution")
	}
	v, _, err := lib.OpenDisc(context.Background(), "disc-b")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Degraded {
		t.Error("verdict filled during the outage not marked degraded")
	}
	if rec.Counter("library.degraded_serve") == 0 {
		t.Error("degraded serve not counted")
	}
	if !hasAudit(rec, obs.AuditDegradedServe) {
		t.Error("degraded serve not audited")
	}
}

// TestMountFailsClosedOnCorruptClipSignature: the detached track-payload
// signature is tampered mid-image; the prewarm's detached verification
// catches it and the whole Mount fails closed.
func TestMountFailsClosedOnCorruptClipSignature(t *testing.T) {
	rec := obs.NewRecorder()
	lib := newLib(rec)
	im := buildImage(t, 34)
	sig, err := im.Get(core.ClipSignaturePath)
	if err != nil {
		t.Fatalf("fixture has no detached clip signature: %v", err)
	}
	corrupt := append([]byte(nil), sig...)
	for i := len(corrupt) / 2; i < len(corrupt)/2+8 && i < len(corrupt); i++ {
		corrupt[i] ^= 0xFF
	}
	if err := im.Put(core.ClipSignaturePath, corrupt); err != nil {
		t.Fatal(err)
	}

	if err := lib.Mount(context.Background(), "disc-a", im); err == nil {
		t.Fatal("mount accepted a corrupted detached clip signature")
	}
	if !hasAudit(rec, obs.AuditVerifyFailed) {
		t.Error("prewarm failure not audited")
	}
	if _, _, err := lib.OpenDisc(context.Background(), "disc-a"); !errors.Is(err, library.ErrNotMounted) {
		t.Fatalf("failed mount left the disc reachable: %v", err)
	}
}

// TestMountCanceledMidPrewarmThenRecovers: a canceled context aborts the
// prewarm (fail closed, disc unregistered); the identical Mount under a
// fresh context succeeds.
func TestMountCanceledMidPrewarmThenRecovers(t *testing.T) {
	lib := newLib(obs.NewRecorder(), library.WithPrewarmWorkers(1))
	im := buildImage(t, 35)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := lib.Mount(ctx, "disc-a", im); err == nil {
		t.Fatal("mount completed under a canceled context")
	}
	if _, _, err := lib.OpenDisc(context.Background(), "disc-a"); !errors.Is(err, library.ErrNotMounted) {
		t.Fatalf("canceled mount left the disc reachable: %v", err)
	}

	if err := lib.Mount(context.Background(), "disc-a", im); err != nil {
		t.Fatalf("fresh-context retry did not recover: %v", err)
	}
	if _, st, err := lib.OpenDisc(context.Background(), "disc-a"); err != nil || st != library.StatusHit {
		t.Fatalf("post-recovery open: status=%q err=%v", st, err)
	}
}
