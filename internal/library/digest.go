package library

import (
	"crypto/sha256"
	"encoding/hex"

	"discsec/internal/c14n"
	"discsec/internal/obs"
	"discsec/internal/xmldom"
)

// CanonicalKey derives the content-addressed cache key: the hex SHA-256
// of the document's exclusive-C14N form. Canonicalizing before hashing
// is what makes the key wrapping-proof: two serializations of the same
// infoset key identically, while any structural change an attacker
// needs for a wrapping substitution (relocated signed subtree, injected
// sibling) changes the canonical octets and misses the cache.
//
// The key is computed over the document as stored (signatures and
// EncryptedData in place), before any verification mutates it.
func CanonicalKey(doc *xmldom.Document, rec *obs.Recorder) (string, error) {
	octets, err := c14n.CanonicalizeDocument(doc, c14n.Options{Exclusive: true, Recorder: rec})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(octets)
	return hex.EncodeToString(sum[:]), nil
}
