package library_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"discsec/internal/disc"
	"discsec/internal/experiments"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/player"
)

// TestStressSharedLibrary is the -race stress gate of the issue: eight
// engines share one library across two discs, mixing hits, misses, and
// byte-budget evictions, while a trust goroutine bumps epochs
// mid-flight (global and per-signer). The invariants: no data race
// (detector), every successful load is verified, and every failure is
// the typed trust-changed fail-closed error — never a stale or
// unverified session.
func TestStressSharedLibrary(t *testing.T) {
	_, creator := experiments.PKIFixture()
	imA := buildImage(t, 20)
	imB := buildImage(t, 21)
	rawA := indexBytes(t, imA)
	rawB := indexBytes(t, imB)

	rec := obs.NewRecorder()
	// Budget below two resident documents: the discs evict each other
	// continually, so the run exercises refill under contention too.
	lib := newLib(rec,
		library.WithShards(1),
		library.WithByteBudget(int64(len(rawA))+int64(len(rawB))/2),
	)
	if err := lib.Mount(context.Background(), "disc-a", imA); err != nil {
		t.Fatal(err)
	}
	if err := lib.Mount(context.Background(), "disc-b", imB); err != nil {
		t.Fatal(err)
	}

	const engines = 8
	const iters = 20
	var wg sync.WaitGroup
	var loads, trackOpens atomic.Int64

	for g := 0; g < engines; g++ {
		g := g
		e := player.NewEngine(
			player.WithLibrary(lib),
			player.WithPolicy(experiments.PlatformPolicy()),
			player.WithStorage(disc.NewLocalStorage(0)),
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				im, name := imA, "disc-a"
				if (g+i)%2 == 1 {
					im, name = imB, "disc-b"
				}
				sess, err := e.Load(context.Background(), im)
				if err != nil {
					if errors.Is(err, library.ErrTrustChanged) {
						continue // fail-closed under a racing bump: allowed
					}
					t.Errorf("engine %d load %d: %v", g, i, err)
					return
				}
				if !sess.Verified() {
					t.Errorf("engine %d load %d: unverified session served", g, i)
					return
				}
				loads.Add(1)
				if _, err := sess.RunApplication("t-app-1"); err != nil {
					t.Errorf("engine %d run %d: %v", g, i, err)
					return
				}
				if _, _, _, err := lib.OpenTrack(context.Background(), name, "t-av-1"); err != nil &&
					!errors.Is(err, library.ErrTrustChanged) {
					t.Errorf("engine %d OpenTrack %d: %v", g, i, err)
					return
				}
				trackOpens.Add(1)
			}
		}()
	}

	// Trust churn racing the loads: global epoch bumps and per-signer
	// invalidations for the (still valid) signer, forcing invalidation,
	// refill, and the fill-retry path concurrently with every engine.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 0 {
				lib.InvalidateAll()
			} else {
				lib.InvalidateSignerName(creator.Name)
			}
		}
	}()

	wg.Wait()
	close(stop)
	churn.Wait()

	if loads.Load() == 0 || trackOpens.Load() == 0 {
		t.Fatalf("stress made no progress: %d loads, %d track opens", loads.Load(), trackOpens.Load())
	}
	// With constant epoch churn the cache cannot have served stale
	// verdicts silently: every invalidation that hit a resident entry
	// must show up as invalidated+refill (misses), and the byte budget
	// must have evicted under two-disc pressure.
	if rec.Counter("library.miss") == 0 {
		t.Error("no misses recorded despite epoch churn")
	}
	if rec.Counter("library.evict") == 0 {
		t.Error("no evictions recorded despite an under-sized budget")
	}
	summary := fmt.Sprintf("hits=%d misses=%d evicts=%d invalidated=%d waits=%d retries=%d",
		rec.Counter("library.hit"), rec.Counter("library.miss"),
		rec.Counter("library.evict"), rec.Counter("library.invalidated"),
		rec.Counter("library.singleflight_wait"), rec.Counter("library.fill_retry"))
	t.Log(summary)
}
