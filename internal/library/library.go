// Package library implements the shared verification library: one pool
// of fully verified content verdicts shared by many player sessions
// across many mounted discs.
//
// The paper's player re-runs the whole Fig. 9 pipeline (decryption
// transform, reference digests, signature validation, chain building)
// on every Application Manifest load — the dominant cost once XML
// security overhead (2.5–5.1x over binary per reference [37]) meets the
// ROADMAP's millions-of-concurrent-users target. The library
// amortizes that cost safely: a sharded, byte-budgeted LRU cache whose
// entries are complete core.OpenResult verdicts, keyed by the triple
//
//	(exclusive-C14N digest, signer-key fingerprint, trust epoch)
//
// so a cache hit can never stand in for content the verifier did not
// actually validate. Keying on the canonical digest (not raw bytes or
// file identity) means any wrapping-style substitution — moving the
// signed subtree, injecting a sibling the application engine would read
// — changes the canonical form and therefore misses the cache; keying
// on the fingerprint of the key that validated SignatureValue (not the
// mutable KeyName/CN hints) binds the verdict to the actual signer; and
// the epoch pair (global + per-signer) lets a revocation flush every
// dependent verdict without a global lock or a cache walk.
//
// Concurrency: lookups are lock-free per shard beyond one short mutex;
// concurrent misses for the same digest collapse into a single
// verification via singleflight; Mount prewarms a disc's manifest tree
// through a bounded worker pool shared by all mounts.
package library

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"discsec/internal/c14n"
	"discsec/internal/core"
	"discsec/internal/cowmap"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/obs"
	"discsec/internal/resilience"
	"discsec/internal/xmldom"
	"discsec/internal/xmlstream"
)

// Status classifies how one open was served.
type Status string

// Open statuses (also surfaced in the server's X-Library-Cache header).
const (
	// StatusHit: the verdict came straight from the cache.
	StatusHit Status = "hit"
	// StatusMiss: this call ran the full verification and filled the
	// cache.
	StatusMiss Status = "miss"
	// StatusWait: another in-flight call was already verifying the same
	// canonical digest; this call waited for its verdict.
	StatusWait Status = "singleflight-wait"
	// StatusBypass: the document is unsigned; it was processed but not
	// cached (only verified verdicts are worth sharing).
	StatusBypass Status = "bypass"
)

// Library errors.
var (
	// ErrBadDocument wraps tokenizer/parser rejections of the input
	// itself (malformed XML, DOCTYPE, depth/token limits) — a client
	// error, distinct from verification failures.
	ErrBadDocument = errors.New("library: malformed document")
	// ErrNotMounted indicates OpenTrack named an unknown disc.
	ErrNotMounted = errors.New("library: disc not mounted")
	// ErrAlreadyMounted indicates a duplicate Mount name.
	ErrAlreadyMounted = errors.New("library: disc already mounted")
	// ErrTrustChanged indicates trust invalidations kept racing a fill;
	// the library fails closed rather than cache a possibly stale
	// verdict.
	ErrTrustChanged = errors.New("library: trust changed during verification; verdict discarded")
	// ErrNoTrack indicates the mounted disc has no such track.
	ErrNoTrack = errors.New("library: no such track")
	// ErrDependencyDown indicates a cold fill was refused outright
	// because a dependency the verification needs (the trust service)
	// is down — its circuit breaker is open. Warm hits keep serving
	// (degraded, audited); only uncached verification fails closed,
	// immediately instead of timing out. See the SECURITY.md decision
	// table.
	ErrDependencyDown = errors.New("library: dependency down; cold fill refused")
)

// Verdict is one fully verified, immutable cache entry: the decrypted
// document, its decoded content hierarchy, and the security report.
// Verdicts are shared read-only across sessions — callers must not
// mutate Doc or Cluster (clone first).
type Verdict struct {
	// Doc is the verified, decrypted document.
	Doc *xmldom.Document
	// Cluster is the decoded content hierarchy.
	Cluster *disc.InteractiveCluster
	// Result is the full security report of the fill verification.
	Result *core.OpenResult
	// Key is the canonical (exclusive C14N) digest the entry is stored
	// under.
	Key string
	// Fingerprint identifies the signing key (core.KeyFingerprint).
	Fingerprint string
	// Degraded reports the verdict was filled while the trust service
	// was degraded (revocation data possibly stale); such verdicts are
	// re-verified as soon as trust recovers.
	Degraded bool

	size int64
}

// Library is a shared pool of verified verdicts. Construct with New;
// the zero value is not usable.
type Library struct {
	opener   core.Opener
	rec      *obs.Recorder
	degraded func() bool

	shards  []*shard
	flights flightGroup

	// globalEpoch versions the whole cache; bumping it invalidates
	// every entry lazily (InvalidateAll).
	globalEpoch atomic.Uint64
	// signerEpochs versions each signer independently so one
	// revocation flushes only that signer's verdicts. Copy-on-write:
	// every cache lookup reads an epoch, and the signer population is
	// tiny and stable next to the lookup rate, so reads must not box
	// the fingerprint key the way sync.Map's Load(any) did.
	signerEpochs cowmap.Map[string, *atomic.Uint64]
	// invalGen counts every invalidation of any scope. Fills capture it
	// before verifying and retry when it moved, so a revocation racing
	// a fill can never be cached around.
	invalGen atomic.Uint64

	// signerIndex maps trust-service binding names to the key
	// fingerprints seen for them, for name-keyed revocation fan-out.
	signerMu    sync.Mutex
	signerIndex map[string]map[string]struct{}

	prewarmSem chan struct{}
	mounts     sync.Map // name -> *mounted

	// fillGate, when set, caps concurrent cold fills (WithFillLimit).
	fillGate *resilience.Bulkhead
}

// Option configures a Library built by New.
type Option func(*Library)

// WithOpener sets the verification configuration (trust roots, decrypt
// material, signature policy). The library owns it: every fill — no
// matter which engine or route triggered it — verifies under this one
// configuration, which is what makes sharing the verdicts sound.
func WithOpener(op core.Opener) Option {
	return func(l *Library) { l.opener = op }
}

// WithRecorder sets the observability recorder for hit/miss/evict/
// singleflight counters, library spans, and degraded-serve audits.
func WithRecorder(rec *obs.Recorder) Option {
	return func(l *Library) { l.rec = rec }
}

// WithByteBudget bounds resident verdict bytes (approximated by source
// document size). The budget is split evenly across shards. Zero or
// negative keeps the default (64 MiB).
func WithByteBudget(n int64) Option {
	return func(l *Library) {
		if n > 0 {
			l.shardBudget(n)
		}
	}
}

// WithShards sets the shard count (power-of-two recommended; default
// 16). More shards reduce lock contention at high engine counts.
func WithShards(n int) Option {
	return func(l *Library) {
		if n > 0 {
			l.shards = newShards(n, defaultBudget)
		}
	}
}

// WithDegradedFunc supplies the degraded-trust probe (typically
// keymgmt.Client.Degraded). While it reports true, cache hits are
// served but audited (obs.AuditDegradedServe), and verdicts filled
// during the outage are re-verified as soon as it reports false.
func WithDegradedFunc(fn func() bool) Option {
	return func(l *Library) { l.degraded = fn }
}

// WithTrustService wires revocation fan-out: every successful Revoke or
// Reissue on the service invalidates the affected signer's verdicts
// before the call returns. If the opener has no KeyByName resolver yet,
// the service's is installed.
func WithTrustService(svc *keymgmt.Service) Option {
	return func(l *Library) {
		if svc == nil {
			return
		}
		svc.OnRevoke(l.InvalidateSignerName)
		if l.opener.KeyByName == nil {
			l.opener.KeyByName = svc.PublicKeyByName
		}
	}
}

// WithPrewarmWorkers bounds the worker pool Mount uses to prewarm a
// disc's manifest tree (default 4, shared across concurrent mounts).
func WithPrewarmWorkers(n int) Option {
	return func(l *Library) {
		if n > 0 {
			l.prewarmSem = make(chan struct{}, n)
		}
	}
}

// WithFillLimit caps concurrent cold-fill verifications with a
// bulkhead. Fills are the expensive path (full Fig. 9 pipeline plus
// trust-service round trips); the cap keeps a burst of distinct misses
// from saturating the verifier while warm hits stay unaffected. 0
// leaves fills uncapped.
func WithFillLimit(n int) Option {
	return func(l *Library) {
		if n > 0 {
			l.fillGate = resilience.NewBulkhead("library-fill", n)
		}
	}
}

const (
	defaultBudget  = 64 << 20
	defaultShards  = 16
	defaultWorkers = 4
	// maxFillAttempts bounds re-verification when trust invalidations
	// race a fill; after that the library fails closed.
	maxFillAttempts = 3
)

// New builds a shared verification library.
func New(opts ...Option) *Library {
	l := &Library{
		shards:      newShards(defaultShards, defaultBudget),
		signerIndex: make(map[string]map[string]struct{}),
		prewarmSem:  make(chan struct{}, defaultWorkers),
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

func (l *Library) shardBudget(total int64) {
	per := total / int64(len(l.shards))
	if per < 1 {
		per = 1
	}
	for _, s := range l.shards {
		s.budget = per
	}
}

//discvet:hotpath shard routing runs on every open
func (l *Library) shardFor(key string) *shard {
	// Keys are hex digests: fold the first two bytes for spread.
	var h uint32
	for i := 0; i < len(key) && i < 8; i++ {
		h = h*31 + uint32(key[i])
	}
	return l.shards[int(h)%len(l.shards)]
}

// obsContext mirrors player.Engine: a recorder on the context wins,
// otherwise the library's is attached for the verification layers.
func (l *Library) obsContext(ctx context.Context) (context.Context, *obs.Recorder) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec := obs.FromContext(ctx); rec != nil {
		return ctx, rec
	}
	return obs.WithRecorder(ctx, l.rec), l.rec
}

// OpenReader verifies a cluster document streamed from r through the
// shared cache, in a single cold-path pass: one tokenization drives
// both the private DOM build (verification mutates it on a miss) and
// the incremental exclusive-C14N digest that is the cache key — the
// reader is consumed exactly once and never buffered whole.
//
// Because the input cannot be re-read, a fill that races a trust
// invalidation fails closed with ErrTrustChanged instead of silently
// re-verifying stale state; the caller retries with a fresh reader.
// The byte-slice form, OpenDocument, re-parses and retries internally.
func (l *Library) OpenReader(ctx context.Context, r io.Reader) (*Verdict, Status, error) {
	ctx, rec := l.obsContext(ctx)
	defer rec.Start(obs.StageLibrary).End()
	if err := ctx.Err(); err != nil {
		return nil, StatusMiss, err
	}
	doc, key, size, err := parseAndKey(rec, r)
	if err != nil {
		return nil, StatusMiss, fmt.Errorf("%w: %w", ErrBadDocument, err)
	}
	return l.open(ctx, rec, key, doc, nil, size, nil)
}

// OpenDocument verifies a raw cluster document through the shared
// cache: one streaming parse+canonical-digest pass, cache lookup, and
// on a miss one singleflight-deduplicated core verification whose
// verdict is cached for every later caller. Unsigned documents are
// processed but never cached (StatusBypass).
func (l *Library) OpenDocument(ctx context.Context, raw []byte) (*Verdict, Status, error) {
	ctx, rec := l.obsContext(ctx)
	defer rec.Start(obs.StageLibrary).End()
	if err := ctx.Err(); err != nil {
		return nil, StatusMiss, err
	}
	doc, key, size, err := parseAndKey(rec, bytes.NewReader(raw))
	if err != nil {
		return nil, StatusMiss, fmt.Errorf("%w: %w", ErrBadDocument, err)
	}
	reparse := func() (*xmldom.Document, error) { return reparseBytes(rec, raw) }
	return l.open(ctx, rec, key, doc, reparse, size, nil)
}

// parseAndKey is the single-pass cold front shared by every library
// entry point: one hardened tokenization builds the private DOM while
// the incremental canonicalizer digests the exclusive-C14N cache key,
// collapsing the old parse-then-walk double pass. The key is
// byte-identical to CanonicalKey over the same document.
func parseAndKey(rec *obs.Recorder, r io.Reader) (*xmldom.Document, string, int64, error) {
	sp := rec.Start(obs.StageParse)
	defer sp.End()
	cr := &countReader{r: r}
	b := xmldom.NewStreamBuilder()
	h := sha256.New()
	st, err := c14n.NewStream(h, c14n.Options{Exclusive: true, Recorder: rec})
	if err != nil {
		return nil, "", 0, err
	}
	if err := xmlstream.Parse(cr, xmlstream.Options{}, b, st); err != nil {
		return nil, "", 0, err
	}
	if err := st.Close(); err != nil {
		return nil, "", 0, err
	}
	return b.Document(), hex.EncodeToString(h.Sum(nil)), cr.n, nil
}

// reparseBytes is the fill-retry parse for byte-backed opens.
func reparseBytes(rec *obs.Recorder, raw []byte) (*xmldom.Document, error) {
	sp := rec.Start(obs.StageParse)
	defer sp.End()
	return xmldom.ParseBytes(raw)
}

// countReader counts consumed bytes for verdict size accounting.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// open serves one keyed request: lookup, then singleflight fill. The
// parsed doc (when non-nil) is consumed by the fill — it must be a
// private parse, since verification mutates it. reparse, when non-nil,
// produces a fresh private parse for fill retries after a trust
// invalidation; a nil reparse (one-shot reader input) makes such races
// fail closed. resolver, when non-nil, dereferences detached URIs (the
// mounted image).
func (l *Library) open(ctx context.Context, rec *obs.Recorder, key string, doc *xmldom.Document, reparse func() (*xmldom.Document, error), size int64, resolver *disc.Image) (*Verdict, Status, error) {
	if v, ok := l.lookup(rec, key); ok {
		rec.Inc("library.hit")
		return v, StatusHit, nil
	}
	var status Status
	v, err, shared := l.flights.do(key, func() (*Verdict, error) {
		// Double-check under flight leadership: a racing fill may have
		// landed between our lookup and taking the flight.
		if v, ok := l.lookup(rec, key); ok {
			status = StatusHit
			rec.Inc("library.hit")
			return v, nil
		}
		status = StatusMiss
		return l.fill(ctx, rec, key, doc, reparse, size, resolver)
	})
	if shared {
		rec.Inc("library.singleflight_wait")
		status = StatusWait
	}
	if err != nil {
		return nil, status, err
	}
	if status == StatusMiss && v.Fingerprint == "" && len(v.Result.Signatures) == 0 {
		status = StatusBypass
	}
	return v, status, nil
}

// lookup returns a valid cached verdict, lazily evicting entries whose
// trust epochs moved. Serving a hit while trust is degraded is allowed
// (the verdict was filled from live trust) but audited.
//
//discvet:hotpath the warm-open path: millions of opens resolve here
func (l *Library) lookup(rec *obs.Recorder, key string) (*Verdict, bool) {
	sh := l.shardFor(key)
	e := sh.get(key)
	if e == nil {
		return nil, false
	}
	if !l.entryValid(e) {
		if sh.removeEntry(e) {
			rec.Inc("library.invalidated")
		}
		return nil, false
	}
	if l.degraded != nil && l.degraded() {
		rec.Inc("library.degraded_serve")
		rec.Audit(obs.AuditDegradedServe, "cached verdict %.12s served under degraded trust (signer %.12s)", key, e.v.Fingerprint)
	}
	return e.v, true
}

// entryValid checks the entry's epochs against current trust: the
// global epoch, the signer's epoch, and — for verdicts filled during a
// trust outage — that the outage is still in effect (once trust
// recovers such verdicts must be re-verified against live revocation
// data).
//
//discvet:hotpath runs on every cache hit
func (l *Library) entryValid(e *entry) bool {
	if e.globalEpoch != l.globalEpoch.Load() {
		return false
	}
	if e.signerEpoch != l.signerEpochOf(e.v.Fingerprint).Load() {
		return false
	}
	if e.v.Degraded && (l.degraded == nil || !l.degraded()) {
		return false
	}
	return true
}

//discvet:hotpath epoch check on every warm-open lookup
func (l *Library) signerEpochOf(fp string) *atomic.Uint64 {
	return l.signerEpochs.GetOrCreate(fp, newEpoch)
}

// newEpoch is GetOrCreate's first-touch factory: a declared function
// so the warm lookup path never builds a closure.
func newEpoch() *atomic.Uint64 { return new(atomic.Uint64) }

// fill runs the real verification and caches the verdict. It captures
// the invalidation generation first and retries (bounded) whenever an
// invalidation landed while verifying, so a revocation can never race a
// fill into caching a stale verdict: the retry re-parses via reparse
// and re-resolves keys, and a now-revoked signer fails verification.
// Without a reparse (one-shot reader input) a raced fill fails closed
// with ErrTrustChanged immediately.
//
//discvet:coldpath a miss runs the full Fig. 9 verification; allocation is inherent
func (l *Library) fill(ctx context.Context, rec *obs.Recorder, key string, doc *xmldom.Document, reparse func() (*xmldom.Document, error), size int64, resolver *disc.Image) (*Verdict, error) {
	release, err := l.fillGate.Acquire(ctx)
	if err != nil {
		rec.Inc("library.fill_rejected")
		return nil, fmt.Errorf("library: fill: %w", err)
	}
	defer release()
	op := l.opener
	if resolver != nil {
		op.Resolver = resolver
	}
	for attempt := 0; attempt < maxFillAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gen := l.invalGen.Load()

		if doc == nil {
			if reparse == nil {
				// One-shot reader input raced a trust invalidation:
				// the stream cannot be replayed, so fail closed like
				// an exhausted retry. The caller may retry with a
				// fresh reader.
				return nil, ErrTrustChanged
			}
			d, err := reparse()
			if err != nil {
				return nil, fmt.Errorf("library: parse: %w", err)
			}
			doc = d
		}
		res, err := op.OpenDocument(ctx, doc)
		doc = nil // consumed (verification mutates it); retries re-parse
		if err != nil {
			if errors.Is(err, resilience.ErrCircuitOpen) {
				// The trust service's breaker is open: nothing can be
				// verified fresh right now, so the fill fails closed with
				// a typed error instead of letting callers time out.
				rec.Inc("library.fill_failclosed")
				rec.Audit(obs.AuditFailClosed, "cold fill %.12s refused: trust dependency down: %v", key, err)
				return nil, fmt.Errorf("library: verification: %w: %w", ErrDependencyDown, err)
			}
			return nil, fmt.Errorf("library: verification: %w", err)
		}
		cluster, err := decodeCluster(res.Doc)
		if err != nil {
			return nil, fmt.Errorf("library: decode cluster: %w", err)
		}
		// Probe degradation after verification: that is when the trust
		// client knows whether it answered from live service or stale
		// cache. A verdict filled on stale revocation data is tainted
		// until trust recovers (entryValid re-verifies it then).
		degradedFill := l.degraded != nil && l.degraded()

		v := &Verdict{
			Doc:         res.Doc,
			Cluster:     cluster,
			Result:      res,
			Key:         key,
			Fingerprint: primaryFingerprint(res),
			Degraded:    degradedFill,
			size:        size,
		}
		if v.Fingerprint == "" && len(res.Signatures) == 0 {
			// Unsigned: nothing worth sharing; hand back uncached.
			rec.Inc("library.bypass")
			return v, nil
		}

		ge := l.globalEpoch.Load()
		se := l.signerEpochOf(v.Fingerprint).Load()
		if l.invalGen.Load() != gen {
			// Trust moved while we verified: the verdict may predate a
			// revocation. Verify again under the new trust state.
			rec.Inc("library.fill_retry")
			continue
		}
		l.indexSigner(res, v.Fingerprint)
		evicted := l.shardFor(key).put(&entry{
			key:         key,
			v:           v,
			globalEpoch: ge,
			signerEpoch: se,
		})
		if evicted > 0 {
			rec.Add("library.evict", int64(evicted))
		}
		rec.Inc("library.miss")
		return v, nil
	}
	return nil, ErrTrustChanged
}

// indexSigner records the binding names seen for a fingerprint so a
// name-keyed revocation can find every dependent epoch.
func (l *Library) indexSigner(res *core.OpenResult, fp string) {
	if fp == "" {
		return
	}
	l.signerMu.Lock()
	defer l.signerMu.Unlock()
	for _, rep := range res.Signatures {
		for _, name := range []string{rep.SignerName, rep.SignerCN} {
			if name == "" {
				continue
			}
			set, ok := l.signerIndex[name]
			if !ok {
				set = make(map[string]struct{})
				l.signerIndex[name] = set
			}
			set[fp] = struct{}{}
		}
	}
}

func primaryFingerprint(res *core.OpenResult) string {
	for _, rep := range res.Signatures {
		if rep.SignerKeyFingerprint != "" {
			return rep.SignerKeyFingerprint
		}
	}
	return ""
}

// decodeCluster strips security markup from a clone and decodes the
// content hierarchy (the same shape player sessions consume).
func decodeCluster(doc *xmldom.Document) (*disc.InteractiveCluster, error) {
	clean := doc.Clone()
	stripSecurityElements(clean)
	return disc.ParseCluster(clean)
}

func stripSecurityElements(doc *xmldom.Document) {
	root := doc.Root()
	if root == nil {
		return
	}
	var remove []*xmldom.Element
	root.Walk(func(n xmldom.Node) bool {
		el, ok := n.(*xmldom.Element)
		if !ok {
			return true
		}
		if el.Local == "Signature" || el.Local == "EncryptedData" {
			remove = append(remove, el)
			return false
		}
		return true
	})
	for _, el := range remove {
		el.Detach()
	}
}

// InvalidateAll bumps the global trust epoch: every resident verdict
// becomes unreachable immediately and is evicted lazily on next touch.
func (l *Library) InvalidateAll() {
	l.globalEpoch.Add(1)
	l.invalGen.Add(1)
	l.rec.Inc("library.invalidate_all")
}

// GlobalEpoch reports the library's current global trust epoch.
// Cluster edges stamp replicated verdicts with it and compare against
// the origin's announced epoch before serving.
func (l *Library) GlobalEpoch() uint64 {
	return l.globalEpoch.Load()
}

// AdvanceGlobalEpoch moves the global trust epoch forward to exactly
// `to`, invalidating every resident verdict, and reports whether the
// epoch moved. It is the wire-facing counterpart of InvalidateAll: a
// revocation announcement replicated over the network can be
// duplicated, delayed, or reordered, so the guard is forward-only — a
// stale or replayed announcement (to <= current) is a no-op and can
// never roll the epoch backward onto verdicts that a newer revocation
// already killed.
func (l *Library) AdvanceGlobalEpoch(to uint64) bool {
	for {
		cur := l.globalEpoch.Load()
		if to <= cur {
			l.rec.Inc("library.epoch_stale")
			return false
		}
		if l.globalEpoch.CompareAndSwap(cur, to) {
			l.invalGen.Add(1)
			l.rec.Inc("library.epoch_advance")
			return true
		}
	}
}

// InvalidateSigner flushes every verdict signed by the fingerprinted
// key — no global lock, no cache walk: the signer's epoch moves and
// dependent entries die on their next lookup.
func (l *Library) InvalidateSigner(fingerprint string) {
	if fingerprint != "" {
		l.signerEpochOf(fingerprint).Add(1)
	}
	l.invalGen.Add(1)
	l.rec.Inc("library.invalidate_signer")
}

// InvalidateSignerName flushes every verdict whose signature named the
// binding (ds:KeyName or certificate CN). Wired to
// keymgmt.Service.OnRevoke by WithTrustService. Even when the name is
// unknown the invalidation generation moves, so an in-flight fill for a
// not-yet-indexed signer still re-verifies.
func (l *Library) InvalidateSignerName(name string) {
	l.signerMu.Lock()
	var fps []string
	for fp := range l.signerIndex[name] {
		fps = append(fps, fp)
	}
	l.signerMu.Unlock()
	for _, fp := range fps {
		l.signerEpochOf(fp).Add(1)
	}
	l.invalGen.Add(1)
	l.rec.Inc("library.invalidate_signer")
}

// Len reports resident entries (diagnostics and tests).
func (l *Library) Len() int {
	n := 0
	for _, s := range l.shards {
		n += s.len()
	}
	return n
}

// SizeBytes reports resident verdict bytes (diagnostics and tests).
func (l *Library) SizeBytes() int64 {
	var n int64
	for _, s := range l.shards {
		n += s.sizeBytes()
	}
	return n
}
