package library_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"discsec/internal/c14n"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/experiments"
	"discsec/internal/keymgmt"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/workload"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// buildImage packs a signed, partially encrypted disc; seed varies the
// content so distinct seeds produce distinct canonical digests.
func buildImage(t testing.TB, seed uint64) *disc.Image {
	t.Helper()
	_, creator := experiments.PKIFixture()
	cluster, clips := workload.Cluster(workload.ClusterSpec{
		AVTracks:  1,
		AppTracks: 1,
		Manifest: workload.ManifestSpec{
			Regions: 2, MediaItems: 2, Scripts: 1, ScriptStatements: 10,
		},
		ClipDurationMS: 50, ClipBitrateKbps: 100,
		Seed: seed,
	})
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster:      cluster,
		Clips:        clips,
		Sign:         true,
		SignLevel:    core.LevelCluster,
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128CBC, Key: experiments.EncKey},
		SignClips:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func indexBytes(t testing.TB, im *disc.Image) []byte {
	t.Helper()
	raw, err := im.ReadIndexDocumentBytes()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// testOpener is the one trust configuration every test library verifies
// under.
func testOpener() core.Opener {
	root, _ := experiments.PKIFixture()
	return core.Opener{
		Roots:            root.Pool(),
		Decrypt:          xmlenc.DecryptOptions{Key: experiments.EncKey},
		RequireSignature: true,
	}
}

func newLib(rec *obs.Recorder, opts ...library.Option) *library.Library {
	return library.New(append([]library.Option{
		library.WithOpener(testOpener()),
		library.WithRecorder(rec),
	}, opts...)...)
}

func TestOpenDocumentCachesVerdicts(t *testing.T) {
	rec := obs.NewRecorder()
	lib := newLib(rec)
	raw := indexBytes(t, buildImage(t, 1))

	v1, st, err := lib.OpenDocument(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if st != library.StatusMiss {
		t.Fatalf("first open status = %q, want miss", st)
	}
	if v1.Fingerprint == "" {
		t.Fatal("verdict has no signer fingerprint")
	}
	if v1.Cluster.FindTrack("t-app-1") == nil {
		t.Fatal("verdict cluster lost its application track")
	}

	v2, st, err := lib.OpenDocument(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if st != library.StatusHit {
		t.Fatalf("second open status = %q, want hit", st)
	}
	if v2 != v1 {
		t.Fatal("hit returned a different verdict instance")
	}
	if got := rec.Counter("library.miss"); got != 1 {
		t.Fatalf("miss counter = %d, want 1", got)
	}
	if got := rec.Counter("library.hit"); got != 1 {
		t.Fatalf("hit counter = %d, want 1", got)
	}
	if lib.Len() != 1 {
		t.Fatalf("resident entries = %d, want 1", lib.Len())
	}
}

// TestSingleflightCollapses64 pins the acceptance criterion: 64
// concurrent identical requests trigger exactly one verification.
func TestSingleflightCollapses64(t *testing.T) {
	rec := obs.NewRecorder()
	lib := newLib(rec)
	raw := indexBytes(t, buildImage(t, 2))

	const n = 64
	var (
		start  sync.WaitGroup
		done   sync.WaitGroup
		misses atomic.Int64
	)
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			v, st, err := lib.OpenDocument(context.Background(), raw)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			if v == nil || v.Cluster == nil {
				t.Error("open returned no verdict")
			}
			if st == library.StatusMiss {
				misses.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()

	if got := misses.Load(); got != 1 {
		t.Fatalf("%d of %d concurrent opens verified, want exactly 1", got, n)
	}
	if got := rec.Counter("library.miss"); got != 1 {
		t.Fatalf("miss counter = %d, want 1", got)
	}
	// The 63 non-leaders either joined the in-flight verification or
	// arrived after it cached — never a second verification.
	hits := rec.Counter("library.hit")
	waits := rec.Counter("library.singleflight_wait")
	if hits+waits != n-1 {
		t.Errorf("hits(%d) + waits(%d) != %d", hits, waits, n-1)
	}
}

func TestUnsignedDocumentBypassesCache(t *testing.T) {
	rec := obs.NewRecorder()
	op := testOpener()
	op.RequireSignature = false
	lib := library.New(library.WithOpener(op), library.WithRecorder(rec))

	cluster, _ := workload.Cluster(workload.ClusterSpec{AppTracks: 1, Seed: 3})
	raw := cluster.Document().Bytes()

	v, st, err := lib.OpenDocument(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if st != library.StatusBypass {
		t.Fatalf("status = %q, want bypass", st)
	}
	if v.Fingerprint != "" {
		t.Fatalf("unsigned verdict has fingerprint %q", v.Fingerprint)
	}
	if lib.Len() != 0 {
		t.Fatalf("unsigned verdict cached: %d resident entries", lib.Len())
	}
	if got := rec.Counter("library.bypass"); got != 1 {
		t.Fatalf("bypass counter = %d, want 1", got)
	}
}

func TestByteBudgetEvicts(t *testing.T) {
	rec := obs.NewRecorder()
	raw := indexBytes(t, buildImage(t, 4))
	// Budget fits roughly two documents in one shard, so the third
	// insert must evict the least recently used.
	lib := newLib(rec,
		library.WithShards(1),
		library.WithByteBudget(int64(len(raw))*2+int64(len(raw))/2),
	)
	for seed := uint64(4); seed < 8; seed++ {
		if _, _, err := lib.OpenDocument(context.Background(), indexBytes(t, buildImage(t, seed))); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Counter("library.evict"); got == 0 {
		t.Error("no evictions under a two-document budget and four fills")
	}
	if n := lib.Len(); n > 2 {
		t.Errorf("%d resident entries exceed the byte budget", n)
	}
}

// keyNameDoc builds a cluster signed with a KeyName-only signature:
// verification must resolve the key through the trust service, so
// revocation genuinely changes the verification outcome.
func keyNameDoc(t *testing.T, seed uint64) []byte {
	t.Helper()
	_, creator := experiments.PKIFixture()
	cluster, _ := workload.Cluster(workload.ClusterSpec{AppTracks: 1, Seed: seed})
	doc := cluster.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}); err != nil {
		t.Fatal(err)
	}
	return doc.Bytes()
}

// TestRevokedSignerUnreachable pins the epoch-bump invariant: after a
// revocation, the revoked signer's verdicts are unreachable even while
// still resident, and re-verification fails closed.
func TestRevokedSignerUnreachable(t *testing.T) {
	root, creator := experiments.PKIFixture()
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{RequireSignature: true}),
		library.WithTrustService(svc), // wires KeyByName + OnRevoke
		library.WithRecorder(rec),
	)
	raw := keyNameDoc(t, 10)

	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusMiss {
		t.Fatalf("fill: status=%q err=%v", st, err)
	}
	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusHit {
		t.Fatalf("warm: status=%q err=%v", st, err)
	}

	if err := svc.Revoke(creator.Name, "pw"); err != nil {
		t.Fatal(err)
	}
	// The verdict is still resident — invalidation is lazy — but must
	// be unreachable: the lookup skips it and re-verification against
	// the revoked binding fails closed.
	if lib.Len() != 1 {
		t.Fatalf("resident entries = %d, want the stale verdict still resident", lib.Len())
	}
	v, st, err := lib.OpenDocument(context.Background(), raw)
	if err == nil {
		t.Fatalf("revoked signer's document served: status=%q verdict=%v", st, v != nil)
	}
	if !errors.Is(err, keymgmt.ErrRevoked) && !strings.Contains(err.Error(), "revoked") {
		t.Errorf("err = %v, want revocation failure", err)
	}
	if got := rec.Counter("library.invalidated"); got != 1 {
		t.Errorf("invalidated counter = %d, want 1", got)
	}
	if got := rec.Counter("library.hit"); got != 1 {
		t.Errorf("hit counter = %d after revocation, want the single pre-revocation hit", got)
	}
}

// TestReissueInvalidates pins that key rollover also flushes the old
// key's verdicts (the new key must re-vouch for everything).
func TestReissueInvalidates(t *testing.T) {
	root, creator := experiments.PKIFixture()
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{RequireSignature: true}),
		library.WithTrustService(svc),
		library.WithRecorder(rec),
	)
	raw := keyNameDoc(t, 11)
	if _, _, err := lib.OpenDocument(context.Background(), raw); err != nil {
		t.Fatal(err)
	}
	if err := svc.Reissue(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	// Same certificate reissued: re-verification succeeds, but the old
	// verdict must not have been served from cache.
	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusMiss {
		t.Fatalf("post-reissue open: status=%q err=%v, want a fresh miss", st, err)
	}
}

func TestInvalidateAll(t *testing.T) {
	rec := obs.NewRecorder()
	lib := newLib(rec)
	raw := indexBytes(t, buildImage(t, 12))
	if _, _, err := lib.OpenDocument(context.Background(), raw); err != nil {
		t.Fatal(err)
	}
	lib.InvalidateAll()
	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusMiss {
		t.Fatalf("post-epoch-bump open: status=%q err=%v, want miss", st, err)
	}
}

func TestMountPrewarmsAndServesWarmTracks(t *testing.T) {
	rec := obs.NewRecorder()
	lib := newLib(rec)
	im := buildImage(t, 13)
	if err := lib.Mount(context.Background(), "disc-a", im); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("library.prewarm"); got == 0 {
		t.Error("mount ran no prewarm tasks")
	}

	track, v, st, err := lib.OpenTrack(context.Background(), "disc-a", "t-app-1")
	if err != nil {
		t.Fatal(err)
	}
	if st != library.StatusHit {
		t.Fatalf("post-mount OpenTrack status = %q, want hit (prewarmed)", st)
	}
	if track.Kind != disc.TrackApplication || track.Manifest == nil {
		t.Fatal("OpenTrack returned a non-application track")
	}
	if v.Fingerprint == "" {
		t.Fatal("mounted verdict has no signer fingerprint")
	}

	xml, _, _, err := lib.TrackXML(context.Background(), "disc-a", "t-av-1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(xml), `Id="t-av-1"`) {
		t.Errorf("track XML does not carry the track id: %.120s", xml)
	}

	if _, _, _, err := lib.OpenTrack(context.Background(), "disc-a", "nope"); !errors.Is(err, library.ErrNoTrack) {
		t.Errorf("unknown track err = %v, want ErrNoTrack", err)
	}
	if _, _, _, err := lib.OpenTrack(context.Background(), "ghost", "t-app-1"); !errors.Is(err, library.ErrNotMounted) {
		t.Errorf("unknown disc err = %v, want ErrNotMounted", err)
	}
	if err := lib.Mount(context.Background(), "disc-a", im); !errors.Is(err, library.ErrAlreadyMounted) {
		t.Errorf("duplicate mount err = %v, want ErrAlreadyMounted", err)
	}
	if !lib.Unmount("disc-a") {
		t.Error("unmount reported the disc missing")
	}
	if _, _, _, err := lib.OpenTrack(context.Background(), "disc-a", "t-app-1"); !errors.Is(err, library.ErrNotMounted) {
		t.Errorf("post-unmount err = %v, want ErrNotMounted", err)
	}
}

// TestMountFailsClosedOnTamper pins the prewarm fail-closed invariant:
// a disc whose index no longer verifies is never registered.
func TestMountFailsClosedOnTamper(t *testing.T) {
	lib := newLib(obs.NewRecorder())
	im := buildImage(t, 14)
	raw := indexBytes(t, im)
	tampered := []byte(strings.Replace(string(raw), "region-1", "region-X", 1))
	if err := im.Put(disc.IndexPath, tampered); err != nil {
		t.Fatal(err)
	}
	if err := lib.Mount(context.Background(), "evil", im); err == nil {
		t.Fatal("tampered disc mounted")
	}
	if _, _, _, err := lib.OpenTrack(context.Background(), "evil", "t-app-1"); !errors.Is(err, library.ErrNotMounted) {
		t.Errorf("failed mount left the disc reachable: %v", err)
	}
}

// TestDegradedTrustServing pins the SECURITY.md policy: hits during a
// trust outage are served but audited; verdicts filled during the
// outage are re-verified as soon as trust recovers.
func TestDegradedTrustServing(t *testing.T) {
	var degraded atomic.Bool
	rec := obs.NewRecorder()
	lib := newLib(rec, library.WithDegradedFunc(degraded.Load))
	raw := indexBytes(t, buildImage(t, 15))

	// Fill with live trust, then degrade: the hit is served + audited.
	if _, _, err := lib.OpenDocument(context.Background(), raw); err != nil {
		t.Fatal(err)
	}
	degraded.Store(true)
	if _, st, err := lib.OpenDocument(context.Background(), raw); err != nil || st != library.StatusHit {
		t.Fatalf("degraded hit: status=%q err=%v", st, err)
	}
	if got := rec.Counter("library.degraded_serve"); got != 1 {
		t.Fatalf("degraded_serve counter = %d, want 1", got)
	}
	found := false
	for _, ev := range rec.AuditTrail() {
		if ev.Kind == obs.AuditDegradedServe {
			found = true
		}
	}
	if !found {
		t.Error("degraded serve not audited")
	}

	// A verdict filled *during* the outage carries the taint...
	raw2 := indexBytes(t, buildImage(t, 16))
	v2, _, err := lib.OpenDocument(context.Background(), raw2)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Degraded {
		t.Fatal("outage-filled verdict not marked degraded")
	}
	// ...and is re-verified once trust recovers.
	degraded.Store(false)
	v3, st, err := lib.OpenDocument(context.Background(), raw2)
	if err != nil {
		t.Fatal(err)
	}
	if st != library.StatusMiss {
		t.Fatalf("post-recovery open status = %q, want re-verification miss", st)
	}
	if v3.Degraded {
		t.Error("re-verified verdict still marked degraded")
	}
}

func TestCanonicalKeyIgnoresSerializationChangesKeyDetectsStructural(t *testing.T) {
	cluster, _ := workload.Cluster(workload.ClusterSpec{AppTracks: 1, Seed: 17})
	doc := cluster.Document()
	k1, err := library.CanonicalKey(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reparse (fresh serialization round-trip): same canonical key.
	reparsed, err := xmldom.ParseBytes(doc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	k2, err := library.CanonicalKey(reparsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("canonical key changed across a serialization round-trip")
	}
	// A wrapping-style structural change — injecting a sibling the
	// engine would read — must change the key.
	doc.Root().CreateChild("track").SetAttr("Id", "t-wrapped")
	k3, err := library.CanonicalKey(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("canonical key blind to an injected sibling element")
	}
}

// TestOpenReaderSharesVerdictWithOpenDocument: the streaming and
// byte-slice entries key on the same exclusive-C14N digest, so a
// document opened one way is a cache hit the other way — the core
// differential contract of the reader-first cold path.
func TestOpenReaderSharesVerdictWithOpenDocument(t *testing.T) {
	im := buildImage(t, 70)
	raw := indexBytes(t, im)
	rec := obs.NewRecorder()
	lib := newLib(rec)

	v1, st1, err := lib.OpenDocument(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != library.StatusMiss {
		t.Fatalf("first open status = %v, want miss", st1)
	}

	v2, st2, err := lib.OpenReader(context.Background(), strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if st2 != library.StatusHit {
		t.Errorf("streamed re-open status = %v, want hit", st2)
	}
	if v2.Key != v1.Key {
		t.Errorf("streaming key %q != DOM key %q", v2.Key, v1.Key)
	}
	if v2 != v1 {
		t.Error("streamed open did not return the shared verdict")
	}

	// The key is the canonical digest of the tree-walking
	// canonicalizer: hex SHA-256 over c14n.CanonicalizeDocument.
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := c14n.CanonicalizeDocument(doc, c14n.Options{Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(canon)
	if want := hex.EncodeToString(sum[:]); v1.Key != want {
		t.Errorf("cache key %q != tree-walker canonical digest %q", v1.Key, want)
	}
}

// TestOpenReaderBadDocument: tokenizer rejections surface as
// ErrBadDocument from both entries — the server's 400 contract.
func TestOpenReaderBadDocument(t *testing.T) {
	lib := newLib(obs.NewRecorder())
	for _, bad := range []string{"<open>unclosed", `<!DOCTYPE a []><a/>`, ""} {
		if _, _, err := lib.OpenReader(context.Background(), strings.NewReader(bad)); !errors.Is(err, library.ErrBadDocument) {
			t.Errorf("OpenReader(%q) err = %v, want ErrBadDocument", bad, err)
		}
		if _, _, err := lib.OpenDocument(context.Background(), []byte(bad)); !errors.Is(err, library.ErrBadDocument) {
			t.Errorf("OpenDocument(%q) err = %v, want ErrBadDocument", bad, err)
		}
	}
}
