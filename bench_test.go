package discsec

// Benchmarks regenerating every experiment in DESIGN.md's index
// (E1–E7, C1, and the ablations of §5). cmd/discbench prints the same
// measurements as tables; see EXPERIMENTS.md for recorded results.

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"testing"

	"discsec/internal/c14n"
	"discsec/internal/disc"
	"discsec/internal/experiments"
	"discsec/internal/rights"
	"discsec/internal/workload"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// --- E1: size overhead, XML security vs OMA DCF --------------------------

func BenchmarkOverheadXMLvsDCF(b *testing.B) {
	for _, n := range experiments.E1Payloads {
		b.Run(fmt.Sprintf("payload=%d", n), func(b *testing.B) {
			payload := workload.Bytes(n, uint64(n))
			var xmlLen, dcfLen int
			for i := 0; i < b.N; i++ {
				x, err := experiments.BuildXMLPackage(payload)
				if err != nil {
					b.Fatal(err)
				}
				d, err := experiments.BuildDCFPackage(payload)
				if err != nil {
					b.Fatal(err)
				}
				xmlLen, dcfLen = len(x), len(d)
			}
			b.ReportMetric(float64(xmlLen), "xml-bytes")
			b.ReportMetric(float64(dcfLen), "dcf-bytes")
			b.ReportMetric(float64(xmlLen)/float64(dcfLen), "size-ratio")
		})
	}
}

// --- E2: processing throughput, XML vs DCF --------------------------------

func BenchmarkProcessXML(b *testing.B) {
	for _, n := range []int{1024, 16384, 262144} {
		b.Run(fmt.Sprintf("payload=%d", n), func(b *testing.B) {
			payload := workload.Bytes(n, uint64(n))
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkg, err := experiments.BuildXMLPackage(payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := experiments.OpenXMLPackage(pkg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProcessDCF(b *testing.B) {
	for _, n := range []int{1024, 16384, 262144} {
		b.Run(fmt.Sprintf("payload=%d", n), func(b *testing.B) {
			payload := workload.Bytes(n, uint64(n))
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkg, err := experiments.BuildDCFPackage(payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := experiments.OpenDCFPackage(pkg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: signing/verification granularity ---------------------------------

func BenchmarkSignGranularity(b *testing.B) {
	for _, target := range experiments.GranularityTargets() {
		b.Run(target.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.SignOnlyAtLevel(target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVerifyGranularity(b *testing.B) {
	for _, target := range experiments.GranularityTargets() {
		b.Run(target.Name, func(b *testing.B) {
			signed, err := experiments.ParsedSignedAtLevel(target)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := experiments.VerifyOnly(signed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: enveloped vs enveloping vs detached -------------------------------

func BenchmarkSignatureForms(b *testing.B) {
	for _, form := range []experiments.SignatureForm{
		experiments.FormEnveloped, experiments.FormEnveloping, experiments.FormDetached,
	} {
		b.Run(string(form), func(b *testing.B) {
			var pkgLen int
			for i := 0; i < b.N; i++ {
				pkg, ext, err := experiments.SignForm(form)
				if err != nil {
					b.Fatal(err)
				}
				if err := experiments.VerifyForm(form, pkg, ext); err != nil {
					b.Fatal(err)
				}
				pkgLen = len(pkg)
			}
			b.ReportMetric(float64(pkgLen), "sig-doc-bytes")
		})
	}
}

// --- E5: full vs partial encryption ---------------------------------------

func BenchmarkEncryptGranularity(b *testing.B) {
	for _, entries := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("full/scores=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doc := experiments.GameDocument(entries)
				if err := experiments.EncryptFull(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("partial/scores=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doc := experiments.GameDocument(entries)
				if err := experiments.EncryptScoresOnly(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartialVsFullDecrypt(b *testing.B) {
	prepare := func(full bool, entries int) []byte {
		doc := experiments.GameDocument(entries)
		var err error
		if full {
			err = experiments.EncryptFull(doc)
		} else {
			err = experiments.EncryptScoresOnly(doc)
		}
		if err != nil {
			b.Fatal(err)
		}
		return doc.Bytes()
	}
	for _, entries := range []int{8, 64, 256} {
		fullRaw := prepare(true, entries)
		partialRaw := prepare(false, entries)
		b.Run(fmt.Sprintf("full/scores=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.DecryptAllIn(fullRaw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("partial/scores=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.DecryptAllIn(partialRaw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: end-to-end pipeline ----------------------------------------------

func BenchmarkEndToEndPipeline(b *testing.B) {
	b.Run("author", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.AuthorPipeline(); err != nil {
				b.Fatal(err)
			}
		}
	})
	art, err := experiments.AuthorPipeline()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("player", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.PlayerPipeline(art.PackedImage); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7: player startup per protection configuration -----------------------

func BenchmarkPlayerStartup(b *testing.B) {
	for _, cfg := range experiments.StartupConfigs() {
		packed, err := experiments.BuildStartupImage(cfg)
		if err != nil {
			b.Fatal(err)
		}
		require := cfg != experiments.StartupClear
		b.Run(string(cfg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.RunStartup(packed, require); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C1: canonicalization throughput ---------------------------------------

func BenchmarkC14N(b *testing.B) {
	for _, size := range []int{1 << 10, 16 << 10, 256 << 10} {
		doc := workload.XMLDocument(size, uint64(size))
		root := doc.Root()
		for _, mode := range []struct {
			name string
			opts c14n.Options
		}{
			{"inclusive", c14n.Options{}},
			{"exclusive", c14n.Options{Exclusive: true}},
			{"inclusive-comments", c14n.Options{WithComments: true}},
			{"inclusive-reference-ns", c14n.Options{ReferenceNamespaceResolution: true}},
			{"exclusive-reference-ns", c14n.Options{Exclusive: true, ReferenceNamespaceResolution: true}},
		} {
			b.Run(fmt.Sprintf("%s/size=%d", mode.name, size), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					if _, err := c14n.Canonicalize(root, mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------

// BenchmarkDigestAlgorithms ablates the 2005 SHA-1 default against the
// modern SHA-256/512 defaults over the signing path.
func BenchmarkDigestAlgorithms(b *testing.B) {
	_, creator := experiments.PKIFixture()
	doc := workload.XMLDocument(32<<10, 7)
	algs := []struct {
		name   string
		digest string
	}{
		{"sha1", xmlsecuri.DigestSHA1},
		{"sha256", xmlsecuri.DigestSHA256},
		{"sha512", xmlsecuri.DigestSHA512},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := doc.Clone()
				_, err := xmldsig.SignEnveloped(d, d.Root(), xmldsig.SignOptions{
					Key:          creator.Key,
					DigestMethod: alg.digest,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCipherModes ablates XML-Enc 1.0 CBC against 1.1 GCM.
func BenchmarkCipherModes(b *testing.B) {
	payload := workload.Bytes(64<<10, 99)
	modes := []struct {
		name string
		alg  string
		key  []byte
	}{
		{"aes128-cbc", xmlsecuri.EncAES128CBC, experiments.EncKey},
		{"aes256-cbc", xmlsecuri.EncAES256CBC, experiments.EncKey256},
		{"aes128-gcm", xmlsecuri.EncAES128GCM, experiments.EncKey},
		{"aes256-gcm", xmlsecuri.EncAES256GCM, experiments.EncKey256},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				doc, err := xmlenc.EncryptOctets(payload, xmlenc.EncryptOptions{Algorithm: m.alg, Key: m.key})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := xmlenc.DecryptOctets(doc.Root(), xmlenc.DecryptOptions{Key: m.key}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKeyTransport ablates the key delivery mechanisms.
func BenchmarkKeyTransport(b *testing.B) {
	rsaKey, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		b.Fatal(err)
	}
	payload := workload.Bytes(4<<10, 3)
	cases := []struct {
		name string
		enc  xmlenc.EncryptOptions
		dec  xmlenc.DecryptOptions
	}{
		{"rsa-oaep", xmlenc.EncryptOptions{RecipientKey: &rsaKey.PublicKey, KeyTransport: xmlsecuri.KeyTransportRSAOAEP}, xmlenc.DecryptOptions{RSAKey: rsaKey}},
		{"rsa-1_5", xmlenc.EncryptOptions{RecipientKey: &rsaKey.PublicKey, KeyTransport: xmlsecuri.KeyTransportRSA15}, xmlenc.DecryptOptions{RSAKey: rsaKey}},
		{"kw-aes128", xmlenc.EncryptOptions{KEK: experiments.EncKey}, xmlenc.DecryptOptions{KEK: experiments.EncKey}},
		{"direct", xmlenc.EncryptOptions{Key: experiments.EncKey256}, xmlenc.DecryptOptions{Key: experiments.EncKey256}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doc, err := xmlenc.EncryptOctets(payload, c.enc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := xmlenc.DecryptOctets(doc.Root(), c.dec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParse measures the DOM substrate itself (every security
// operation starts with a parse).
func BenchmarkParse(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		raw := workload.XMLDocument(size, uint64(size)).Bytes()
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				if _, err := xmldom.ParseBytes(raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkImageContainer measures disc image pack/unpack (the
// player's first step on any load).
func BenchmarkImageContainer(b *testing.B) {
	im := disc.NewImage()
	im.Put("INDEX/cluster.xml", workload.XMLDocument(8<<10, 1).Bytes())
	im.Put("CLIPS/clip-1.m2ts", disc.GenerateClip(disc.ClipSpec{DurationMS: 500, BitrateKbps: 8000, Seed: 2}))
	packed := im.Bytes()
	b.Run("pack", func(b *testing.B) {
		b.SetBytes(int64(len(packed)))
		for i := 0; i < b.N; i++ {
			_ = im.Bytes()
		}
	})
	b.Run("unpack", func(b *testing.B) {
		b.SetBytes(int64(len(packed)))
		for i := 0; i < b.N; i++ {
			if _, err := disc.ReadImageBytes(packed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLicenseLifecycle measures signed-license verification + grant
// evaluation (per play in the licensed path).
func BenchmarkLicenseLifecycle(b *testing.B) {
	_, creator := experiments.PKIFixture()
	lic := &rights.License{ID: "bench", Issuer: creator.Name, Grants: []rights.Grant{
		{Principal: "*", Right: rights.RightPlay, Resource: "*"},
	}}
	doc := lic.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{Certificates: creator.Chain},
	}); err != nil {
		b.Fatal(err)
	}
	raw := doc.Bytes()
	root, _ := experiments.PKIFixture()

	b.Run("verify+parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := xmldom.ParseBytes(raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xmldsig.VerifyDocument(d, xmldsig.VerifyOptions{Roots: root.Pool()}); err != nil {
				b.Fatal(err)
			}
			if _, err := rights.Parse(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	eval := rights.NewEvaluator(lic)
	b.Run("exercise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := eval.Exercise("any", rights.RightPlay, "t"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
