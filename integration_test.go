package discsec

// Full-stack integration: every subsystem of the reproduction in one
// flow — PKI with intermediate, authoring with sign-then-encrypt and a
// clip signature, rights license, XKMS trust service, TLS content
// delivery, and the player pipeline with policy enforcement, script
// execution, and licensed playback.

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/markup"
	"discsec/internal/player"
	"discsec/internal/rights"
	"discsec/internal/server"
	"discsec/internal/workload"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
)

func TestFullStackEndToEnd(t *testing.T) {
	// --- PKI -------------------------------------------------------------
	root, err := keymgmt.NewRootCA("Integration Root", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	studioCA, err := root.NewIntermediate("Studio CA", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	studio, err := studioCA.IssueIdentity("Integration Studio", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	studio.Chain = append(studio.Chain[:1], studioCA.Cert.Raw)

	// --- XKMS trust service ----------------------------------------------
	trust := keymgmt.NewService(root.Pool())
	if err := trust.Register(studio.Name, studio.Cert, "auth"); err != nil {
		t.Fatal(err)
	}
	xkmsSrv := httptest.NewServer(&keymgmt.Handler{Service: trust})
	defer xkmsSrv.Close()
	xkms := &keymgmt.Client{BaseURL: xkmsSrv.URL}

	// --- Authoring --------------------------------------------------------
	contentKey := workload.Bytes(32, 0x1517)
	layout := &markup.Layout{Regions: []markup.Region{{ID: "main", Width: 1920, Height: 1080}}}
	timing := &markup.TimingNode{Kind: "seq", Children: []*markup.TimingNode{
		{Kind: "img", Src: "menu.png", Region: "main", DurMS: 3000},
	}}
	cluster := &disc.InteractiveCluster{
		Title: "Integration Feature",
		Tracks: []*disc.Track{
			{
				ID:   "t-feature",
				Kind: disc.TrackAV,
				Playlist: &disc.Playlist{Items: []disc.PlayItem{
					{ClipID: "clip-1", InMS: 0, OutMS: 1000},
				}},
			},
			{
				ID:   "t-app",
				Kind: disc.TrackApplication,
				Manifest: &disc.Manifest{
					ID: "feature-app",
					Markup: disc.Markup{SubMarkups: []disc.SubMarkup{
						{Kind: "layout", Content: layout.Element()},
						{Kind: "timing", Content: timing.Element()},
					}},
					Code: disc.Code{Scripts: []disc.Script{{
						Language: "ecmascript",
						Source: `
var runs = storage.get("runs");
if (runs == null) { runs = 0; }
runs = Number(runs) + 1;
storage.set("runs", runs);
player.log("run number", runs);
display.draw("menu");
`,
					}}},
				},
			},
		},
	}
	protector := &core.Protector{Identity: studio}
	image, err := protector.Package(core.PackageSpec{
		Cluster: cluster,
		Clips: map[string][]byte{
			"CLIPS/clip-1.m2ts": disc.GenerateClip(disc.ClipSpec{DurationMS: 200, BitrateKbps: 4000, Seed: 15}),
		},
		PermissionRequests: map[string]*access.PermissionRequest{
			"feature-app": {AppID: "feature-app", Permissions: []access.Permission{
				{Name: access.PermLocalStorageRead, Target: "feature-app/*"},
				{Name: access.PermLocalStorageWrite, Target: "feature-app/*"},
				{Name: access.PermGraphicsPlane},
			}},
		},
		Sign:         true,
		SignLevel:    core.LevelCluster,
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Key: contentKey},
		SignClips:    true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rights license: this device may play the feature once.
	lic := &rights.License{ID: "lic", Issuer: studio.Name, Grants: []rights.Grant{
		{Principal: "device-X", Right: rights.RightPlay, Resource: "t-feature", MaxUses: 1},
	}}
	licDoc := lic.Document()
	if _, err := xmldsig.SignEnveloped(licDoc, licDoc.Root(), xmldsig.SignOptions{
		Key:     studio.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: studio.Name, Certificates: studio.Chain},
	}); err != nil {
		t.Fatal(err)
	}
	if err := image.Put(player.LicensePath, licDoc.Bytes()); err != nil {
		t.Fatal(err)
	}

	// --- TLS content delivery ---------------------------------------------
	tlsCert, err := root.IssueServerCertificate("cdn.example", []string{"127.0.0.1"}, keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	cs := server.NewContentServer()
	cs.PublishImage("discs/feature.img", image)
	base, shutdown, err := cs.ServeTLS("127.0.0.1:0", tlsCert)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	dl := server.NewTLSDownloader(root.Pool())
	downloaded, err := dl.FetchImage(base, "discs/feature.img")
	if err != nil {
		t.Fatalf("TLS download: %v", err)
	}

	// --- Player -----------------------------------------------------------
	engine := &player.Engine{
		Roots:   root.Pool(),
		Policy:  integrationPolicy(),
		Storage: disc.NewLocalStorage(0),
		DecryptKeys: xmlenc.DecryptOptions{
			Key: contentKey,
		},
		RequireSignature: true,
		KeyByName:        xkms.PublicKeyByName,
	}
	sess, err := engine.Load(context.Background(), downloaded)
	if err != nil {
		t.Fatalf("player load: %v", err)
	}
	if !sess.Verified() || sess.SignerName() != studio.Name {
		t.Fatalf("verification report wrong: %v %q", sess.Verified(), sess.SignerName())
	}

	// Application executes with storage and graphics.
	rep, err := sess.RunApplication("t-app")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ScriptErrors) != 0 {
		t.Fatalf("script errors: %v", rep.ScriptErrors)
	}
	if !strings.Contains(strings.Join(rep.Log, "\n"), "run number 1") {
		t.Errorf("log = %v", rep.Log)
	}
	if len(rep.Events) != 1 || rep.Events[0].Src != "menu.png" {
		t.Errorf("events = %+v", rep.Events)
	}

	// Licensed playback: one play allowed, second refused.
	play, err := sess.PlayTrackLicensed("device-X", "t-feature")
	if err != nil {
		t.Fatalf("licensed play: %v", err)
	}
	if !play.SignatureVerified {
		t.Error("clip signature not verified")
	}
	if _, err := sess.PlayTrackLicensed("device-X", "t-feature"); err == nil {
		t.Error("second play allowed despite MaxUses=1")
	}

	// XKMS revocation: after the studio key is revoked, a fresh load
	// whose trust depends on the key service fails. (This image embeds
	// certificates, so emulate a KeyName-only signature check.)
	if err := trust.Revoke(studio.Name, "auth"); err != nil {
		t.Fatal(err)
	}
	if _, err := xkms.PublicKeyByName(studio.Name); err == nil {
		t.Error("revoked binding still resolvable")
	}
}

func integrationPolicy() *access.PDP {
	return &access.PDP{PolicySet: access.PolicySet{
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			Combining: access.FirstApplicable,
			Rules: []access.Rule{
				{
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified",
						Op: access.OpEquals, Value: "true",
					}},
				},
				{Effect: access.EffectPermit},
			},
		}},
	}}
}
